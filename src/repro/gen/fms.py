"""Flight management system (FMS) use case (Appendix C.0.4, Table 4).

The paper's case study is a subset of a real FMS with 11 implicit-deadline
sporadic tasks: seven criticality-B *localization* tasks and four
criticality-C *flightplan* tasks.  The industrial WCETs were not released;
Table 4 gives the periods and the typical WCET ranges instead, and the
authors "generate randomly the FMS instance ... which conforms to Table 4".

=====  =======  ===========  ====
task   T = D    C range      chi
=====  =======  ===========  ====
tau1   5000 ms  (0, 20] ms   B
tau2    200 ms  (0, 20] ms   B
tau3   1000 ms  (0, 20] ms   B
tau4   1600 ms  (0, 20] ms   B
tau5    100 ms  (0, 20] ms   B
tau6   1000 ms  (0, 20] ms   B
tau7   1000 ms  (0, 20] ms   B
tau8   1000 ms  (0, 200] ms  C
tau9   1000 ms  (0, 200] ms  C
tau10  1000 ms  (0, 200] ms  C
tau11  1000 ms  (0, 200] ms  C
=====  =======  ===========  ====

Every task instance has a constant failure probability ``1e-5``; the FMS
operates continuously for ``OS = 10`` hours; the degradation factor for the
Fig. 2 experiment is ``df = 6``.

:data:`CANONICAL_SEED` pins the randomly drawn instance used by the
repository's Fig. 1 / Fig. 2 reproduction.  The seed was selected (see
``benchmarks``/``tests``) so the instance exhibits the paper's narrative:
unschedulable with the bare re-execution profiles
(``n_HI = 3, n_LO = 2``), schedulable with adaptation profiles
``n' <= 2`` and unschedulable for ``n' > 2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.task import Task, TaskSet

__all__ = [
    "FMS_PERIODS_B",
    "FMS_PERIODS_C",
    "FMS_WCET_MAX_B",
    "FMS_WCET_MAX_C",
    "FMS_FAILURE_PROBABILITY",
    "FMS_OPERATION_HOURS",
    "FMS_DEGRADATION_FACTOR",
    "CANONICAL_SEED",
    "FMSParameters",
    "generate_fms",
    "canonical_fms",
]

#: Periods (= deadlines) of the seven level-B localization tasks, in ms.
FMS_PERIODS_B: tuple[float, ...] = (5000.0, 200.0, 1000.0, 1600.0, 100.0,
                                    1000.0, 1000.0)
#: Periods (= deadlines) of the four level-C flightplan tasks, in ms.
FMS_PERIODS_C: tuple[float, ...] = (1000.0, 1000.0, 1000.0, 1000.0)
#: WCET upper bound for level-B tasks (ms); draws are from (0, 20].
FMS_WCET_MAX_B: float = 20.0
#: WCET upper bound for level-C tasks (ms); draws are from (0, 200].
FMS_WCET_MAX_C: float = 200.0
#: Constant per-instance failure probability assumed in the case study.
FMS_FAILURE_PROBABILITY: float = 1e-5
#: Mission duration ``OS`` of the case study, in hours.
FMS_OPERATION_HOURS: float = 10.0
#: Service degradation factor of the Fig. 2 experiment.
FMS_DEGRADATION_FACTOR: float = 6.0

#: Seed of the repository's pinned FMS instance (see module docstring).
#: Selected so that, with the minimal profiles ``n_HI=3, n_LO=2``:
#: the bare system is unschedulable (``U = 1.018 > 1``); ``U_MC``
#: crosses 1 between ``n' = 2`` and ``n' = 3`` for both the killing and the
#: degradation backends; ``pfh(LO)`` under killing at ``n' = 2`` has order
#: of magnitude 1e-1 and under degradation 1e-11 — the exact orders the
#: paper reports for its (unpublished) instance in Section 5.1.
CANONICAL_SEED: int = 333


@dataclass(frozen=True)
class FMSParameters:
    """Experiment constants of the FMS case study bundled for callers."""

    failure_probability: float = FMS_FAILURE_PROBABILITY
    operation_hours: float = FMS_OPERATION_HOURS
    degradation_factor: float = FMS_DEGRADATION_FACTOR


def generate_fms(rng: int | np.random.Generator = CANONICAL_SEED) -> TaskSet:
    """Draw one random FMS instance conforming to Table 4.

    WCETs are uniform over ``(0, C_max]`` per the "typical ranges" of the
    paper.  The returned set carries the ``HI=B, LO=C`` criticality spec.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    tasks: list[Task] = []
    for i, period in enumerate(FMS_PERIODS_B):
        wcet = _draw_wcet(gen, FMS_WCET_MAX_B)
        tasks.append(
            Task(
                name=f"tau{i + 1}",
                period=period,
                deadline=period,
                wcet=wcet,
                criticality=CriticalityRole.HI,
                failure_probability=FMS_FAILURE_PROBABILITY,
            )
        )
    for j, period in enumerate(FMS_PERIODS_C):
        wcet = _draw_wcet(gen, FMS_WCET_MAX_C)
        tasks.append(
            Task(
                name=f"tau{len(FMS_PERIODS_B) + j + 1}",
                period=period,
                deadline=period,
                wcet=wcet,
                criticality=CriticalityRole.LO,
                failure_probability=FMS_FAILURE_PROBABILITY,
            )
        )
    return TaskSet(
        tasks, spec=DualCriticalitySpec.from_names("B", "C"), name="fms"
    )


def _draw_wcet(gen: np.random.Generator, maximum: float) -> float:
    """Uniform draw from the half-open interval ``(0, maximum]``."""
    return maximum * (1.0 - gen.random())


def canonical_fms() -> TaskSet:
    """The repository's pinned FMS instance (seed :data:`CANONICAL_SEED`)."""
    return generate_fms(CANONICAL_SEED)
