"""Random task-set generation (Appendix C.0.5 of the paper).

The paper's generator for the extensive simulations of Fig. 3 is
parameterised by:

- ``[u-, u+]``: per-task utilization ``C_i/T_i`` drawn uniformly;
- ``U``: the target system utilization ``sum C_i/T_i``;
- ``[T-, T+]``: periods drawn uniformly;
- ``P_HI``: probability that a task is HI-criticality.

Starting from an empty set, random tasks are added until the target
utilization ``U`` is reached.  The published settings are
``u- = 0.01, u+ = 0.2, T- = 200 ms, T+ = 2 s, P_HI = 0.2``; tasks have
implicit deadlines.

:func:`uunifast` (Bini & Buttazzo) is included as a library extension for
experiments that need an exact utilization with a fixed task count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.task import Task, TaskSet

__all__ = ["GeneratorConfig", "PAPER_CONFIG", "generate_taskset", "uunifast",
           "uunifast_taskset"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the Appendix C random task generator."""

    u_min: float = 0.01
    u_max: float = 0.2
    period_min: float = 200.0
    period_max: float = 2000.0
    p_hi: float = 0.2
    failure_probability: float = 1e-5
    #: When set, per-task failure probabilities are drawn log-uniformly
    #: from ``[failure_probability, failure_probability_max]`` instead of
    #: being the constant ``failure_probability`` (the paper's universal
    #: ``f``).  Library extension for heterogeneous-hardware studies.
    failure_probability_max: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.u_min < self.u_max <= 1.0:
            raise ValueError(
                f"need 0 < u- < u+ <= 1, got [{self.u_min}, {self.u_max}]"
            )
        if not 0.0 < self.period_min <= self.period_max:
            raise ValueError(
                f"need 0 < T- <= T+, got [{self.period_min}, {self.period_max}]"
            )
        if not 0.0 <= self.p_hi <= 1.0:
            raise ValueError(f"P_HI must be in [0, 1], got {self.p_hi}")
        if not 0.0 <= self.failure_probability < 1.0:
            raise ValueError(
                f"failure probability must be in [0, 1), got "
                f"{self.failure_probability}"
            )
        if self.failure_probability_max is not None:
            if not (
                0.0
                < self.failure_probability
                <= self.failure_probability_max
                < 1.0
            ):
                raise ValueError(
                    "need 0 < f_min <= f_max < 1 for a failure-probability "
                    f"range, got [{self.failure_probability}, "
                    f"{self.failure_probability_max}]"
                )

    def draw_failure_probability(self, gen: np.random.Generator) -> float:
        """One per-task ``f``: the constant, or a log-uniform draw."""
        if self.failure_probability_max is None:
            return self.failure_probability
        log_lo = np.log(self.failure_probability)
        log_hi = np.log(self.failure_probability_max)
        return float(np.exp(gen.uniform(log_lo, log_hi)))


#: The exact settings used for the experiments of Fig. 3 (Appendix C.0.5).
PAPER_CONFIG = GeneratorConfig()


def generate_taskset(
    target_utilization: float,
    spec: DualCriticalitySpec,
    rng: int | np.random.Generator = 0,
    config: GeneratorConfig = PAPER_CONFIG,
    name: str | None = None,
) -> TaskSet:
    """One random dual-criticality task set at the target utilization.

    Follows the paper's procedure: add random tasks until ``U`` is
    reached.  The last task's utilization is clipped so the final system
    utilization equals ``target_utilization`` exactly (the paper does not
    specify the overshoot handling; clipping keeps every data point at its
    nominal x-coordinate and the clipped task within ``[0, u+]``).

    A generated set always contains at least one HI and one LO task — sets
    without both criticalities are not dual-criticality systems; the
    criticality of the last tasks is forced when needed.
    """
    if target_utilization <= 0:
        raise ValueError(
            f"target utilization must be positive, got {target_utilization}"
        )
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    tasks: list[Task] = []
    remaining = target_utilization
    index = 0
    while remaining > 1e-12:
        utilization = gen.uniform(config.u_min, config.u_max)
        utilization = min(utilization, remaining)
        period = gen.uniform(config.period_min, config.period_max)
        criticality = (
            CriticalityRole.HI if gen.random() < config.p_hi else CriticalityRole.LO
        )
        tasks.append(
            Task(
                name=f"tau{index + 1}",
                period=period,
                deadline=period,
                wcet=utilization * period,
                criticality=criticality,
                failure_probability=config.draw_failure_probability(gen),
            )
        )
        remaining -= utilization
        index += 1
    _ensure_both_criticalities(tasks, gen)
    label = name or f"random-U{target_utilization:.3f}"
    return TaskSet(tasks, spec=spec, name=label)


def _ensure_both_criticalities(
    tasks: list[Task], gen: np.random.Generator
) -> None:
    """Flip a random task's criticality if one side is empty."""
    roles = {t.criticality for t in tasks}
    if len(tasks) >= 2 and len(roles) == 1:
        present = roles.pop()
        index = int(gen.integers(0, len(tasks)))
        old = tasks[index]
        tasks[index] = Task(
            name=old.name,
            period=old.period,
            deadline=old.deadline,
            wcet=old.wcet,
            criticality=present.other,
            failure_probability=old.failure_probability,
        )


def uunifast(
    n_tasks: int, total_utilization: float, rng: int | np.random.Generator = 0
) -> np.ndarray:
    """UUniFast [Bini & Buttazzo 2005]: unbiased utilization vectors.

    Returns ``n_tasks`` utilizations summing exactly to
    ``total_utilization``, uniformly distributed over the simplex.
    """
    if n_tasks < 1:
        raise ValueError(f"need at least one task, got {n_tasks}")
    if total_utilization <= 0:
        raise ValueError(
            f"total utilization must be positive, got {total_utilization}"
        )
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    utilizations = np.empty(n_tasks)
    remaining = total_utilization
    for i in range(n_tasks - 1):
        next_remaining = remaining * gen.random() ** (1.0 / (n_tasks - 1 - i))
        utilizations[i] = remaining - next_remaining
        remaining = next_remaining
    utilizations[-1] = remaining
    return utilizations


def uunifast_taskset(
    n_tasks: int,
    total_utilization: float,
    spec: DualCriticalitySpec,
    rng: int | np.random.Generator = 0,
    config: GeneratorConfig = PAPER_CONFIG,
    name: str | None = None,
) -> TaskSet:
    """A UUniFast-distributed task set with the paper's period/criticality model."""
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    utilizations = uunifast(n_tasks, total_utilization, gen)
    tasks: list[Task] = []
    for i, utilization in enumerate(utilizations):
        period = gen.uniform(config.period_min, config.period_max)
        criticality = (
            CriticalityRole.HI if gen.random() < config.p_hi else CriticalityRole.LO
        )
        tasks.append(
            Task(
                name=f"tau{i + 1}",
                period=period,
                deadline=period,
                wcet=float(utilization) * period,
                criticality=criticality,
                failure_probability=config.draw_failure_probability(gen),
            )
        )
    _ensure_both_criticalities(tasks, gen)
    label = name or f"uunifast-n{n_tasks}-U{total_utilization:.3f}"
    return TaskSet(tasks, spec=spec, name=label)
