"""Workload generation: random task sets (Appendix C) and the FMS case study."""

from repro.gen.fms import (
    CANONICAL_SEED,
    FMS_DEGRADATION_FACTOR,
    FMS_FAILURE_PROBABILITY,
    FMS_OPERATION_HOURS,
    FMSParameters,
    canonical_fms,
    generate_fms,
)
from repro.gen.taskset import (
    PAPER_CONFIG,
    GeneratorConfig,
    generate_taskset,
    uunifast,
    uunifast_taskset,
)

__all__ = [
    "CANONICAL_SEED",
    "FMS_DEGRADATION_FACTOR",
    "FMS_FAILURE_PROBABILITY",
    "FMS_OPERATION_HOURS",
    "FMSParameters",
    "canonical_fms",
    "generate_fms",
    "PAPER_CONFIG",
    "GeneratorConfig",
    "generate_taskset",
    "uunifast",
    "uunifast_taskset",
]
