"""Command-line interface: ``ftmc <experiment>`` / ``python -m repro``.

Regenerates any table or figure of the paper from the terminal::

    ftmc table1            # DO-178B requirements
    ftmc table2            # Example 3.1
    ftmc table3            # Example 4.1 conversion
    ftmc table4            # FMS instance
    ftmc fig1              # FMS task-killing sweep (+ ASCII chart)
    ftmc fig2              # FMS degradation sweep (+ ASCII chart)
    ftmc fig3 --panels a b --sets 100   # acceptance-ratio curves
    ftmc all --sets 50     # everything, CSVs into --output-dir

CSV files are written when ``--output-dir`` is given.

Static analysis (see ``docs/lint.md`` for the rule catalog)::

    ftmc lint system.json            # diagnose a task-set document
    ftmc lint system.json --format json --strict
    ftmc selfcheck                   # AST self-analysis of src/repro

Exit codes for ``lint``/``selfcheck``: 0 clean, 1 errors, 2 warnings
present under ``--strict``.  Malformed or missing input files yield a
one-line diagnostic and a nonzero exit, never a traceback.

Fault-tolerant campaigns (see ``docs/robustness.md``)::

    ftmc campaign fig2                   # sharded, checkpointed run
    ftmc campaign fig2 --jobs 4          # same results, 4 workers at once
    ftmc campaign fig2 --resume          # continue after a crash/kill
    ftmc campaign fig1 --chaos 42        # self-test under fault injection
    ftmc campaign fig2 --jobs 4 --executors 2   # distributed worker groups
    ftmc campaign fig3 --timeout 600 --max-retries 4 --sets 100

``--executors N`` runs the shards on N ``campaign-worker`` group
processes instead of the in-process pool — same bytes out, but each
group is a failure domain the campaign survives (leases are reclaimed
and groups restarted; docs/robustness.md).  The ``campaign-worker``
verb itself is the internal group entry point spawned by the
supervisor; it is not meant to be invoked by hand.

Campaign exit codes: 0 all shards completed, 3 completed degraded
(some shards failed; coverage report says which), 130/143 interrupted
by SIGINT/SIGTERM (checkpoint retained — rerun with ``--resume``),
2 unusable configuration.

Observability (see ``docs/observability.md``)::

    ftmc campaign fig1 --trace run.jsonl   # record spans/metrics JSONL
    ftmc stats run.jsonl                   # aggregate a recorded trace
    ftmc stats run.jsonl --format json
    ftmc stats --check run.jsonl           # schema validation (0 ok, 2 bad)
    ftmc stats                             # live process registry snapshot

``--trace`` works with every verb; ``stats`` exits 0 on success and 2
on unreadable or schema-invalid traces.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.experiments.fig1 import render_fig1, run_fig1
from repro.experiments.fig2 import render_fig2, run_fig2
from repro.experiments.fig3 import (
    DEFAULT_FAILURE_PROBABILITIES,
    DEFAULT_UTILIZATIONS,
    render_fig3_panel,
    run_fig3,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.tables import (
    table1,
    table2_example31,
    table3_example41,
    table4_fms,
)

__all__ = ["main"]


def _emit(result: ExperimentResult, output_dir: str | None, chart: str = "") -> None:
    print(result.render())
    if chart:
        print()
        print(chart)
    print()
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
        path = os.path.join(output_dir, f"{result.name}.csv")
        result.to_csv(path)
        print(f"wrote {path}")


def _run_tables(args: argparse.Namespace, which: Sequence[str]) -> None:
    producers = {
        "table1": table1,
        "table2": table2_example31,
        "table3": table3_example41,
        "table4": table4_fms,
    }
    for name in which:
        _emit(producers[name](), args.output_dir)


def _run_fig3(args: argparse.Namespace) -> None:
    results = run_fig3(
        panels=args.panels,
        failure_probabilities=args.failure_probabilities,
        utilizations=args.utilizations,
        sets_per_point=args.sets,
        seed=args.seed,
    )
    for result in results.values():
        _emit(result, args.output_dir, render_fig3_panel(result))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ftmc",
        description=(
            "Reproduce the evaluation of 'On the Scheduling of "
            "Fault-Tolerant Mixed-Criticality Systems' (DAC 2014)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "table2", "table3", "table4",
            "fig1", "fig2", "fig3", "all", "analyze", "plan",
            "backends", "sensitivity", "validate",
            "lint", "selfcheck", "campaign", "campaign-worker",
            "bench", "stats", "serve",
        ],
        help=(
            "paper artifact to regenerate; 'analyze' for a user system; "
            "'plan' for partitioned multicore planning "
            "(docs/multicore.md); "
            "'backends'/'sensitivity'/'validate' for the extension "
            "studies; 'lint'/'selfcheck' for static analysis; 'campaign' "
            "for a fault-tolerant sharded run (docs/robustness.md); "
            "'bench' for the performance baseline (docs/performance.md); "
            "'stats' to aggregate an obs trace (docs/observability.md); "
            "'serve' for the resident HTTP/JSON API (docs/api.md)"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="bench: smoke configuration (smaller budgets and problem sizes)",
    )
    parser.add_argument(
        "path", nargs="?", default=None, metavar="TARGET",
        help=(
            "task-set JSON to check (for 'lint'), experiment name "
            "(for 'campaign': fig1, fig2, fig3, tables, validation, "
            "multicore), "
            "trace file (for 'stats'), or "
            "bench report (for 'bench --check')"
        ),
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE.jsonl",
        help="record a structured obs trace of this invocation to FILE "
             "(spans, events, metrics; docs/observability.md)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="stats: validate the trace against the schema instead of "
             "aggregating it (exit 0 valid, 2 problems); "
             "bench: validate an existing BENCH_*.json report against the "
             "schema and the committed floors instead of measuring "
             "(exit 0 valid, 1 problems)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="campaign: continue from the checkpoint instead of restarting",
    )
    parser.add_argument(
        "--chaos", type=int, default=None, metavar="SEED",
        help="campaign: inject worker crashes/hangs and a torn checkpoint "
             "from this chaos seed (self-test mode)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="campaign: per-shard watchdog budget in seconds "
             "(default 120, or 5 under --chaos)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="campaign: run up to N shard workers concurrently "
             "(default min(cpu_count, 4); 1 = serial; results are "
             "byte-identical for every N)",
    )
    parser.add_argument(
        "--executors", type=int, default=None, metavar="N",
        help="campaign: distribute the pool slots over N campaign-worker "
             "group processes (default: in-process pool; clamped to "
             "--jobs; results are byte-identical for every N)",
    )
    parser.add_argument(
        "--executor-restarts", type=int, default=None, metavar="K",
        help="campaign: restarts allowed per lost executor before it is "
             "retired (default 2; only meaningful with --executors)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="K",
        help="campaign: re-executions allowed per failed shard (default 2)",
    )
    parser.add_argument(
        "--retry-delay", type=float, default=None, metavar="S",
        help="campaign: base backoff delay before a retry "
             "(default 0.5, or 0.1 under --chaos)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        dest="output_format",
        help="diagnostics format for 'lint'/'selfcheck' (default text; "
             "'sarif' emits SARIF 2.1.0 for code-scanning upload)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as fatal: exit 2 when any warning fires",
    )
    parser.add_argument(
        "--profile", choices=["src", "tests"], default="src",
        help="selfcheck: rule scoping profile ('tests' relaxes the "
             "library-only rules for test/benchmark trees)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="selfcheck: apply the provably safe rewrites (sorted() "
             "wrapping, seed threading) before analysing",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE.json",
        help="selfcheck: baseline file suppressing accepted findings "
             "(default: auto-discover lint-baseline.json near the target)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="selfcheck: report every finding, ignoring any baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="selfcheck: rewrite the baseline from the current findings "
             "(records new ones, expires stale ones)",
    )
    parser.add_argument(
        "--system", default=None, metavar="FILE.json",
        help="task-set JSON for 'analyze'/'plan' (see repro.io for the "
             "format)",
    )
    parser.add_argument(
        "--cores", type=int, default=2, metavar="M",
        help="plan: number of processors to partition onto (default 2)",
    )
    parser.add_argument(
        "--backend", default="edf-vd", metavar="NAME",
        help="plan: uniprocessor schedulability backend (default edf-vd; "
             "see GET /v1/backends or docs/api.md for the catalog)",
    )
    parser.add_argument(
        "--no-exact", action="store_true",
        help="plan: heuristic portfolio only, skip the branch-and-bound "
             "optimizer (verdicts may then be inconclusive)",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="plan: node budget for the branch-and-bound search "
             "(default 50000)",
    )
    parser.add_argument(
        "--operation-hours", type=float, default=10.0,
        help="mission duration OS for 'analyze' (default 10 h)",
    )
    parser.add_argument(
        "--degradation-factor", type=float, default=6.0,
        help="service degradation factor df for 'analyze' (default 6)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="serve: interface to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8181,
        help="serve: TCP port to bind (default 8181; 0 = ephemeral, "
             "printed on startup)",
    )
    parser.add_argument(
        "--output-dir", default=None, help="directory for CSV exports"
    )
    parser.add_argument(
        "--sets", type=int, default=500,
        help="task sets per Fig. 3 data point (paper: 500)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--panels", nargs="+", default=["a", "b", "c", "d"],
        choices=["a", "b", "c", "d"], help="Fig. 3 panels to run",
    )
    parser.add_argument(
        "--failure-probabilities", type=float, nargs="+",
        default=list(DEFAULT_FAILURE_PROBABILITIES),
        help="hardware failure probabilities f (paper: 1e-3 1e-5)",
    )
    parser.add_argument(
        "--utilizations", type=float, nargs="+",
        default=list(DEFAULT_UTILIZATIONS),
        help="utilization grid for Fig. 3",
    )
    return parser


def _fail(message: str) -> int:
    """One-line diagnostic on stderr; the CLI never shows a traceback."""
    print(f"ftmc: error: {message}", file=sys.stderr)
    return 2


def _run_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.io import load_taskset
    from repro.report import analyse_system, render_report

    if args.system is None:
        print("error: 'analyze' needs --system FILE.json", file=sys.stderr)
        return 2
    try:
        taskset = load_taskset(args.system)
    except OSError as exc:
        return _fail(f"cannot read {args.system}: {exc.strerror or exc}")
    except json.JSONDecodeError as exc:
        return _fail(
            f"{args.system} is not valid JSON: {exc.msg} "
            f"(line {exc.lineno}, column {exc.colno})"
        )
    except (ValueError, TypeError, KeyError) as exc:
        return _fail(f"{args.system}: {exc}")
    report = analyse_system(
        taskset,
        operation_hours=args.operation_hours,
        degradation_factor=args.degradation_factor,
    )
    print(render_report(report))
    return 0 if report.feasible else 1


def _run_plan(args: argparse.Namespace) -> int:
    import json

    from repro.api import AnalysisService, ApiError, PlanRequest
    from repro.io import load_taskset

    path = args.system or args.path
    if path is None:
        return _fail("'plan' needs a task-set file: ftmc plan --system "
                     "FILE.json --cores M")
    if args.cores < 1:
        return _fail(f"--cores must be >= 1, got {args.cores}")
    if args.max_nodes is not None and args.max_nodes < 1:
        return _fail(f"--max-nodes must be >= 1, got {args.max_nodes}")
    try:
        taskset = load_taskset(path)
    except OSError as exc:
        return _fail(f"cannot read {path}: {exc.strerror or exc}")
    except json.JSONDecodeError as exc:
        return _fail(
            f"{path} is not valid JSON: {exc.msg} "
            f"(line {exc.lineno}, column {exc.colno})"
        )
    except (ValueError, TypeError, KeyError) as exc:
        return _fail(f"{path}: {exc}")

    from repro.planner import DEFAULT_MAX_NODES

    request = PlanRequest(
        taskset=taskset,
        cores=args.cores,
        backend=args.backend,
        degradation_factor=(
            args.degradation_factor
            if args.backend == "edf-vd-degradation" else None
        ),
        operation_hours=args.operation_hours,
        exact=not args.no_exact,
        max_nodes=(
            args.max_nodes if args.max_nodes is not None else DEFAULT_MAX_NODES
        ),
    )
    try:
        response = AnalysisService().plan(request)
    except ApiError as exc:
        return _fail(exc.message)

    verdict = "SCHEDULABLE" if response.success else (
        f"NOT SCHEDULABLE ({response.failure})"
    )
    print(f"FT-MP plan: {verdict} on m={response.cores} cores "
          f"[{response.backend}]")
    if response.n_hi is not None:
        print(f"  profiles: n_HI={response.n_hi} n_LO={response.n_lo} "
              f"n1_HI={response.n1_hi} n2_HI={response.n2_hi}")
    if response.success:
        print(f"  pfh: HI={response.pfh_hi:.3e} LO={response.pfh_lo:.3e} "
              f"(OS={response.operation_hours:g} h, {response.mechanism})")
        gap = "n/a" if response.gap is None else f"{response.gap:.4f}"
        print(f"  strategy: {response.strategy} "
              f"(portfolio objective={response.heuristic_objective:.4f}, "
              f"exact objective={response.exact_objective:.4f}, "
              f"gap={gap}, nodes={response.exact_nodes})")
        if response.partition is not None:
            for index, names in enumerate(response.partition):
                print(f"  P{index}: [{', '.join(names)}]")
    if response.inconclusive:
        print("  note: verdict is INCONCLUSIVE at some adaptation profile "
              "(heuristic miss without an exhaustive exact search) — the "
              "reported n2/verdict may be pessimistic")
    return 0 if response.success else 1


def _emit_lint_report(report, subject: str, args: argparse.Namespace) -> int:
    if args.output_format == "json":
        print(report.render_json(subject))
    elif args.output_format == "sarif":
        from repro.lint.sarif import render_sarif
        from repro.lint.taint import TAINT_RULE_CATALOG

        print(render_sarif(report, subject, rule_catalog=TAINT_RULE_CATALOG))
    else:
        print(report.render_text(subject))
    return report.exit_code(strict=args.strict)


def _run_lint(args: argparse.Namespace) -> int:
    from repro.lint.engine import lint_file

    path = args.path or args.system
    if path is None:
        return _fail("'lint' needs a task-set file: ftmc lint FILE.json")
    return _emit_lint_report(lint_file(path), path, args)


def _apply_fixes(root: str) -> int:
    """``selfcheck --fix``: rewrite the tree in place; count the fixes."""
    from repro.lint.fixes import fix_file

    applied = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            for fix in fix_file(path):
                relpath = os.path.relpath(path, root)
                print(f"fixed {relpath}: {fix.render()}", file=sys.stderr)
                applied += 1
    return applied


def _run_selfcheck(args: argparse.Namespace) -> int:
    import json

    from repro.lint.baseline import (
        apply_baseline,
        default_baseline_path,
        load_baseline,
        write_baseline,
    )
    from repro.lint.codecheck import check_path, default_root
    from repro.lint.project import build_index
    from repro.lint.taint import analyze_index

    root = args.path or default_root()
    if not os.path.isdir(root):
        return _fail(f"'selfcheck' target is not a directory: {root}")

    if args.fix:
        applied = _apply_fixes(root)
        print(f"applied {applied} rewrite(s)", file=sys.stderr)

    report = check_path(root, profile=args.profile)
    index = build_index(root, jobs=args.jobs)
    report = report.extend(analyze_index(index))

    baseline_path = None
    if not args.no_baseline:
        baseline_path = args.baseline or default_baseline_path(root)

    if args.update_baseline:
        target = baseline_path or os.path.join(os.getcwd(),
                                               "lint-baseline.json")
        written = write_baseline(target, report)
        print(f"baseline: wrote {written} entrie(s) to {target}",
              file=sys.stderr)
        baseline_path = target

    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            return _fail(f"cannot read baseline {baseline_path}: {exc}")
        result = apply_baseline(report, baseline)
        report = result.report
        if result.suppressed or result.stale:
            print(
                f"baseline: suppressed {result.suppressed} finding(s), "
                f"{len(result.stale)} stale entrie(s)"
                + (" — regenerate with --update-baseline"
                   if result.stale else ""),
                file=sys.stderr,
            )
    return _emit_lint_report(report, root, args)


def _run_campaign(args: argparse.Namespace) -> int:
    from repro.runner import (
        CampaignConfigError,
        CampaignInterrupted,
        RetryPolicy,
        build_options,
        campaign_names,
        run_campaign,
    )

    target = args.path
    if target is None:
        return _fail(
            "'campaign' needs an experiment: ftmc campaign "
            f"{{{','.join(campaign_names())}}}"
        )
    if target not in campaign_names():
        return _fail(
            f"unknown campaign {target!r} (known: {', '.join(campaign_names())})"
        )
    if args.max_retries < 0:
        return _fail(f"--max-retries must be >= 0, got {args.max_retries}")
    if args.jobs is not None and args.jobs < 1:
        return _fail(f"--jobs must be >= 1, got {args.jobs}")
    if args.executors is not None and args.executors < 1:
        return _fail(f"--executors must be >= 1, got {args.executors}")
    if args.executor_restarts is not None and args.executor_restarts < 0:
        return _fail(
            f"--executor-restarts must be >= 0, got {args.executor_restarts}"
        )
    base_delay = args.retry_delay
    if base_delay is None:
        base_delay = 0.1 if args.chaos is not None else 0.5
    options = build_options(
        target,
        seed=args.seed,
        sets=args.sets,
        panels=args.panels,
        failure_probabilities=args.failure_probabilities,
        utilizations=args.utilizations,
    )
    try:
        report = run_campaign(
            target,
            options=options,
            output_dir=args.output_dir,
            resume=args.resume,
            chaos_seed=args.chaos,
            timeout=args.timeout,
            retry=RetryPolicy(
                max_retries=args.max_retries,
                base_delay=base_delay,
                max_delay=max(30.0, base_delay),
            ),
            on_event=lambda message: print(f"[campaign {target}] {message}"),
            jobs=args.jobs,
            executors=args.executors,
            **(
                {"executor_restarts": args.executor_restarts}
                if args.executor_restarts is not None
                else {}
            ),
        )
    except CampaignInterrupted as interrupt:
        print(
            f"[campaign {target}] interrupted (signal {interrupt.signum}); "
            "checkpoint retained — rerun with --resume to continue",
            file=sys.stderr,
        )
        return interrupt.exit_code
    except CampaignConfigError as exc:
        return _fail(str(exc))
    print(report.render())
    return report.exit_code


def _run_backends(args: argparse.Namespace) -> None:
    from repro.experiments.backend_comparison import (
        render_backend_comparison,
        run_backend_comparison,
    )

    result = run_backend_comparison(
        sets_per_point=min(args.sets, 200), seed=args.seed
    )
    _emit(result, args.output_dir, render_backend_comparison(result))


def _run_sensitivity(args: argparse.Namespace) -> None:
    from repro.experiments.sensitivity import (
        sweep_degradation_factor,
        sweep_operation_hours,
        sweep_p_hi,
    )
    from repro.experiments.overhead_study import run_overhead_study
    from repro.gen.fms import canonical_fms

    fms = canonical_fms()
    _emit(sweep_degradation_factor(fms), args.output_dir)
    _emit(sweep_operation_hours(fms), args.output_dir)
    _emit(
        sweep_p_hi(sets_per_point=min(args.sets, 200), seed=args.seed),
        args.output_dir,
    )
    _emit(run_overhead_study(seed=args.seed), args.output_dir)


def _run_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation_campaign import run_validation_campaign

    exit_code = 0
    for mechanism in ("kill", "degrade"):
        result = run_validation_campaign(
            sets_per_point=min(args.sets, 50),
            mechanism=mechanism,
            seed=args.seed,
        )
        _emit(result, args.output_dir)
        if any(
            accepted != validated
            for accepted, validated in zip(
                result.column("accepted"), result.column("validated")
            )
        ):
            exit_code = 1
    return exit_code


def _run_stats(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        TRACE_SCHEMA,
        aggregate_trace,
        check_trace,
        load_trace,
        render_stats,
        snapshot_stats,
    )

    path = args.path
    if args.check:
        if path is None:
            return _fail(
                "'stats --check' needs a trace file: "
                "ftmc stats --check TRACE.jsonl"
            )
        try:
            problems = check_trace(path)
        except OSError as exc:
            return _fail(f"cannot read {path}: {exc.strerror or exc}")
        if problems:
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
            return 2
        print(f"{path}: valid {TRACE_SCHEMA} trace")
        return 0
    if path is not None:
        try:
            stats = aggregate_trace(load_trace(path), source=path)
        except OSError as exc:
            return _fail(f"cannot read {path}: {exc.strerror or exc}")
    else:
        stats = snapshot_stats()
    if args.output_format == "json":
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        print(render_stats(stats))
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        SCHEMA,
        check_report,
        render_report,
        run_benchmarks,
        write_report,
    )

    if args.check:
        import json

        if args.path is None:
            return _fail(
                "'bench --check' needs a report file: "
                "ftmc bench --check BENCH.json"
            )
        try:
            with open(args.path, "r", encoding="utf-8") as handle:
                report = json.load(handle)
        except OSError as exc:
            return _fail(f"cannot read {args.path}: {exc.strerror or exc}")
        except ValueError as exc:
            return _fail(f"{args.path}: not valid JSON ({exc})")
        problems = check_report(report)
        if problems:
            for problem in problems:
                print(f"{args.path}: {problem}", file=sys.stderr)
            return 1
        print(f"{args.path}: valid {SCHEMA} report, all floors hold")
        return 0

    report = run_benchmarks(quick=args.quick, seed=args.seed)
    print(render_report(report))
    if args.output_dir:
        path = write_report(report, args.output_dir)
        print(f"wrote {path}")
    # Exit 1 when a measured speedup regresses below its floor; a missing
    # NumPy stack skips the guard (passed is None) rather than failing it.
    return 1 if report["guard"]["passed"] is False else 0


def _run_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.api.server import ApiServer

    if not 0 <= args.port <= 65535:
        return _fail(f"--port must be in 0..65535, got {args.port}")
    try:
        server = ApiServer(host=args.host, port=args.port)
    except OSError as exc:
        return _fail(
            f"cannot bind {args.host}:{args.port}: {exc.strerror or exc}"
        )
    print(f"ftmc serve: listening on http://{server.host}:{server.port} "
          "(Ctrl-C to stop)")

    # SIGTERM must unwind like SIGINT so a --trace session is closed
    # properly and `ftmc stats --check` accepts the emitted stream.
    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("ftmc serve: shutting down")
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.stop()
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.experiment == "campaign-worker":
        # Internal: the worker-group entry point spawned by --executors.
        from repro.runner.workergroup import run_worker_group

        return run_worker_group()
    if args.experiment == "analyze":
        return _run_analyze(args)
    if args.experiment == "plan":
        return _run_plan(args)
    if args.experiment == "bench":
        return _run_bench(args)
    if args.experiment == "lint":
        return _run_lint(args)
    if args.experiment == "selfcheck":
        return _run_selfcheck(args)
    if args.experiment == "campaign":
        return _run_campaign(args)
    if args.experiment == "stats":
        return _run_stats(args)
    if args.experiment == "serve":
        return _run_serve(args)
    if args.experiment == "backends":
        _run_backends(args)
        return 0
    if args.experiment == "sensitivity":
        _run_sensitivity(args)
        return 0
    if args.experiment == "validate":
        return _run_validate(args)
    if args.experiment in ("table1", "table2", "table3", "table4"):
        _run_tables(args, [args.experiment])
    elif args.experiment == "fig1":
        result = run_fig1()
        _emit(result, args.output_dir, render_fig1(result))
    elif args.experiment == "fig2":
        result = run_fig2()
        _emit(result, args.output_dir, render_fig2(result))
    elif args.experiment == "fig3":
        _run_fig3(args)
    else:  # all
        _run_tables(args, ["table1", "table2", "table3", "table4"])
        fig1_result = run_fig1()
        _emit(fig1_result, args.output_dir, render_fig1(fig1_result))
        fig2_result = run_fig2()
        _emit(fig2_result, args.output_dir, render_fig2(fig2_result))
        _run_fig3(args)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    # Intermixed parsing so the optional TARGET positional still matches
    # after a flag ("ftmc stats --check trace.jsonl").
    args = build_parser().parse_intermixed_args(argv)
    if args.trace is None:
        return _dispatch(args)
    from repro.obs import span, start_tracing, stop_tracing

    try:
        start_tracing(args.trace)
    except OSError as exc:
        return _fail(f"cannot write trace {args.trace}: {exc.strerror or exc}")
    try:
        with span("ftmc", experiment=args.experiment):
            return _dispatch(args)
    finally:
        stop_tracing()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
