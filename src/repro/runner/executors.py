"""Pluggable campaign executors: where shard attempts actually run.

The supervisor schedules :class:`~repro.runner.shards.ShardRun` state
machines over an *executor* — a failure domain that can launch one
shard attempt per pool slot and can die as a whole:

- :class:`LocalPoolExecutor` — the default in-process topology: each
  attempt is a directly forked worker process, exactly as the
  supervisor ran them before executors existed.  It cannot be lost
  (its "host" is the supervisor itself).
- :class:`SubprocessExecutor` — one ``ftmc campaign-worker`` group per
  executor, launched in its own session and spoken to over the
  line-delimited JSON protocol (:mod:`repro.runner.protocol`).  The
  stepping stone to remote hosts: everything the supervisor knows about
  the group travels over two pipes, and the group can be SIGKILLed as a
  unit — which the chaos injector does on purpose.

Both expose the same two duck-typed surfaces: the executor itself
(dispatch/liveness/restart/kill) and an :class:`AttemptHandle` per
in-flight attempt (poll/finished/message/exitcode/cancel/close).  The
supervisor's scheduling, judging, retry and checkpoint logic is
identical across topologies — that is the determinism contract's
rely-guarantee: whatever the transport does, the bytes that reach the
result files are a pure function of the shard plan.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
from typing import Any, Callable, Mapping

from repro.obs import clock
from repro.runner.protocol import ChannelClosed, PipeChannel

__all__ = [
    "EXEC_RESTARTING",
    "EXEC_RETIRED",
    "EXEC_UP",
    "AttemptHandle",
    "Executor",
    "ExecutorLost",
    "HEARTBEAT_TIMEOUT",
    "LocalPoolExecutor",
    "SubprocessExecutor",
    "executor_rng",
    "fork_context",
]

#: Executor lifecycle states (managed by the supervisor's sweep).
EXEC_UP = "up"
EXEC_RESTARTING = "restarting"
EXEC_RETIRED = "retired"

#: Seconds without any protocol traffic before a live-looking group is
#: presumed wedged.  Groups heartbeat every ~0.5 s; process death is
#: detected much earlier via ``Popen.poll`` and pipe EOF, so this only
#: catches a group that is alive but silent.
HEARTBEAT_TIMEOUT = 30.0


class ExecutorLost(RuntimeError):
    """Dispatch hit a dead executor; the supervisor reclaims its leases."""


def fork_context() -> Any:
    """The multiprocessing context used for worker forks (prefer fork)."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def executor_rng(index: int) -> random.Random:
    """Per-executor restart-backoff jitter stream.

    Mirrors :func:`repro.runner.shards.backoff_rng`: each executor draws
    restart jitter from its own generator, seeded purely by its index,
    so one executor's failure history never perturbs another's delays.
    """
    return random.Random(0xF7E * 1_000_003 + index)


class AttemptHandle:
    """One in-flight shard attempt, as seen by the supervisor."""

    def poll(self) -> None:
        """Pump I/O for this attempt (drain pipes, demux results)."""
        raise NotImplementedError

    def finished(self) -> bool:
        """Whether the attempt has delivered its final message/exitcode."""
        raise NotImplementedError

    @property
    def message(self) -> str | None:
        raise NotImplementedError

    @property
    def exitcode(self) -> int | None:
        raise NotImplementedError

    def cancel(self) -> None:
        """Kill the attempt (watchdog timeout path)."""
        raise NotImplementedError

    def close(self) -> None:
        """Detach every resource; the handle is dead afterwards."""
        raise NotImplementedError


class Executor:
    """Common executor state; topologies override the transport verbs."""

    #: Whether ``--chaos`` may SIGKILL this executor as a unit.
    can_kill = False
    #: Whether a lost executor can be replaced by a fresh incarnation.
    can_restart = False

    def __init__(self, eid: str, index: int = 0) -> None:
        self.eid = eid
        #: Pool slots this executor serves (assigned by the supervisor).
        self.slots: list[int] = []
        self.state = EXEC_UP
        self.incarnation = 0
        self.restarts_used = 0
        #: Monotonic instant before which a scheduled restart must wait.
        self.restart_ready_at = 0.0
        self.rng = executor_rng(index)

    def start(self) -> None:
        """Bring the executor up (spawn its transport, if any)."""

    def start_attempt(
        self,
        experiment: str,
        params: Mapping[str, Any],
        chaos_action: str | None,
        delay: float,
    ) -> AttemptHandle:
        raise NotImplementedError

    def pump(self) -> None:
        """Drain transport I/O (no-op for the in-process topology)."""

    def alive(self) -> bool:
        return True

    def restart(self) -> None:
        """Replace a lost transport with a fresh incarnation."""
        raise NotImplementedError(f"executor {self.eid} cannot restart")

    def kill(self) -> None:
        """SIGKILL the whole executor (chaos path)."""
        raise NotImplementedError(f"executor {self.eid} cannot be killed")

    def shutdown(self) -> None:
        """Tear the executor down cleanly at campaign end."""


class _LocalAttemptHandle(AttemptHandle):
    """A directly forked worker process plus its one-shot result pipe."""

    def __init__(self, process: Any, conn: Any) -> None:
        self._process: Any = process
        self._conn: Any = conn
        self._message: str | None = None
        self._exitcode: int | None = None
        self._done = False

    def poll(self) -> None:
        self._drain()

    def _drain(self) -> None:
        try:
            while self._conn is not None and self._conn.poll(0):
                self._message = self._conn.recv()
        except (EOFError, OSError):
            pass

    def finished(self) -> bool:
        if self._done:
            return True
        if self._process is None or self._process.is_alive():
            return False
        # The worker exited: drain the pipe's tail before judging.
        self._drain()
        self._process.join()
        self._exitcode = self._process.exitcode
        self._done = True
        return True

    @property
    def message(self) -> str | None:
        return self._message

    @property
    def exitcode(self) -> int | None:
        return self._exitcode

    def cancel(self) -> None:
        process = self._process
        if process is None:
            return
        process.terminate()
        process.join(0.5)
        if process.is_alive():
            process.kill()
            process.join()
        self._process = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self._process = None


class LocalPoolExecutor(Executor):
    """The in-process worker pool: fork a worker per attempt.

    Behaviour-preserving extraction of the supervisor's original
    fork/pipe logic.  ``worker`` is the fork target (the supervisor
    passes :func:`repro.runner.worker.shard_worker`); it stays a
    parameter so tests can substitute instrumented workers.
    """

    def __init__(self, eid: str, worker: Callable[..., None]) -> None:
        super().__init__(eid)
        self._worker = worker
        self._ctx = fork_context()

    def start_attempt(
        self,
        experiment: str,
        params: Mapping[str, Any],
        chaos_action: str | None,
        delay: float,
    ) -> AttemptHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=self._worker,
            args=(child_conn, experiment, dict(params), chaos_action, delay),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _LocalAttemptHandle(process, parent_conn)


class _SubprocessAttemptHandle(AttemptHandle):
    """One task dispatched to a worker group, demuxed by its executor."""

    def __init__(self, executor: "SubprocessExecutor", task_id: int) -> None:
        self._executor = executor
        self.task_id = task_id
        self._message: str | None = None
        self._exitcode: int | None = None
        self._done = False

    def poll(self) -> None:
        self._executor.pump()

    def finished(self) -> bool:
        return self._done

    @property
    def message(self) -> str | None:
        return self._message

    @property
    def exitcode(self) -> int | None:
        return self._exitcode

    def cancel(self) -> None:
        self._executor.cancel_task(self.task_id)

    def close(self) -> None:
        self._executor.forget_task(self.task_id)


class SubprocessExecutor(Executor):
    """One ``ftmc campaign-worker`` group process per executor.

    The group runs in its own session (so a chaos kill can SIGKILL the
    whole process group), speaks the pipe protocol, and heartbeats.
    Task ids are never reused across incarnations, so a result from a
    previous life can never be mistaken for a current attempt's.
    """

    can_kill = True
    can_restart = True

    def __init__(self, eid: str, index: int) -> None:
        super().__init__(eid, index)
        self._popen: Any = None
        self._channel: PipeChannel | None = None
        self._tasks: dict[int, _SubprocessAttemptHandle] = {}
        self._task_counter = 0
        self._last_seen = 0.0

    def start(self) -> None:
        self._spawn()

    def _spawn(self) -> None:
        import repro

        env = dict(os.environ)
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._popen = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign-worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # diagnostics pass through to the supervisor's
            start_new_session=True,  # kill()/killpg reaps shard children too
            env=env,
        )
        self._channel = PipeChannel(self._popen.stdin, self._popen.stdout)
        self._last_seen = clock.monotonic()

    def start_attempt(
        self,
        experiment: str,
        params: Mapping[str, Any],
        chaos_action: str | None,
        delay: float,
    ) -> AttemptHandle:
        if self._channel is None or self._channel.closed:
            raise ExecutorLost(f"executor {self.eid} has no live channel")
        self._task_counter += 1
        task_id = self._task_counter
        try:
            self._channel.send(
                {
                    "op": "run",
                    "task": task_id,
                    "experiment": experiment,
                    "params": dict(params),
                    "chaos": chaos_action,
                    "delay": delay,
                }
            )
        except ChannelClosed as exc:
            raise ExecutorLost(f"executor {self.eid} died: {exc}") from exc
        handle = _SubprocessAttemptHandle(self, task_id)
        self._tasks[task_id] = handle
        return handle

    def pump(self) -> None:
        """Demux every pending reply onto its attempt handle.

        Also called once more *after* the group dies: results the group
        flushed before dying are still sitting in the pipe buffer, and
        recovering them is what makes an executor kill lose zero
        completed shards.
        """
        if self._channel is None:
            return
        for reply in self._channel.poll():
            self._last_seen = clock.monotonic()
            op = reply.get("op")
            if op == "result":
                handle = self._tasks.pop(reply.get("task"), None)
                if handle is not None:
                    message = reply.get("message")
                    handle._message = (
                        message if isinstance(message, str) else None
                    )
                    exitcode = reply.get("exitcode")
                    handle._exitcode = (
                        exitcode if isinstance(exitcode, int) else None
                    )
                    handle._done = True
            # "ready" and "heartbeat" only refresh the liveness clock.

    def alive(self) -> bool:
        if self._popen is None or self._channel is None:
            return False
        if self._popen.poll() is not None or self._channel.closed:
            return False
        return clock.monotonic() - self._last_seen < HEARTBEAT_TIMEOUT

    def cancel_task(self, task_id: int) -> None:
        self._tasks.pop(task_id, None)
        if self._channel is not None:
            try:
                self._channel.send({"op": "cancel", "task": task_id})
            except ChannelClosed:
                pass

    def forget_task(self, task_id: int) -> None:
        self._tasks.pop(task_id, None)

    def restart(self) -> None:
        """Spawn the next incarnation (the previous one is dead)."""
        self._teardown(kill=True)
        self._tasks.clear()
        self.incarnation += 1
        self._spawn()

    def kill(self) -> None:
        """SIGKILL the whole group session and sever the pipe."""
        popen = self._popen
        if popen is not None and popen.poll() is None:
            try:
                os.killpg(popen.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                popen.kill()
        if self._channel is not None:
            self._channel.close()
            self._channel = None

    def shutdown(self) -> None:
        if self._channel is not None and not self._channel.closed:
            try:
                self._channel.send({"op": "shutdown"})
            except ChannelClosed:
                pass
        self._teardown(kill=False)

    def _teardown(self, kill: bool) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
        popen = self._popen
        if popen is None:
            return
        if kill and popen.poll() is None:
            self.kill()
        try:
            popen.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            popen.kill()
            popen.wait()
        self._popen = None
