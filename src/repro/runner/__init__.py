"""Fault-tolerant campaign runner (``ftmc campaign <experiment>``).

Applies the paper's own fault-tolerance recipe to the experiment
harness: deterministic seeded shards executed on a bounded worker pool
(``--jobs N``, byte-identical results for every N), per-shard
watchdogs, bounded retry with non-blocking exponential backoff (the
harness's re-execution profile),
crash-safe JSONL checkpointing with exact ``--resume``, graceful
degradation with explicit coverage accounting, and a chaos mode that
injects worker crashes, hangs, torn checkpoints — and, under
``--executors``, whole-executor SIGKILLs — to test the runner itself.

Shard attempts run on pluggable *executors*
(:mod:`repro.runner.executors`): the default in-process fork pool, or
``--executors N`` worker-group processes that are first-class failure
domains (checkpointed leases, reclamation, bounded restarts).  See
``docs/robustness.md``.
"""

from repro.runner.campaigns import (
    CAMPAIGNS,
    CampaignDefinition,
    build_options,
    campaign_names,
    get_campaign,
)
from repro.runner.chaos import ChaosInjector
from repro.runner.checkpoint import CampaignCheckpoint, CheckpointState
from repro.runner.executors import (
    AttemptHandle,
    Executor,
    ExecutorLost,
    LocalPoolExecutor,
    SubprocessExecutor,
)
from repro.runner.protocol import PROTOCOL_VERSION, ChannelClosed, PipeChannel
from repro.runner.retry import RetryPolicy
from repro.runner.shards import (
    CampaignReport,
    ShardOutcome,
    ShardRun,
    ShardSpec,
    backoff_rng,
)
from repro.runner.supervisor import (
    CHAOS_TIMEOUT,
    DEFAULT_EXECUTOR_RESTARTS,
    DEFAULT_TIMEOUT,
    CampaignConfigError,
    CampaignInterrupted,
    default_jobs,
    run_campaign,
)
from repro.runner.workergroup import run_worker_group

__all__ = [
    "CAMPAIGNS",
    "CampaignDefinition",
    "build_options",
    "campaign_names",
    "get_campaign",
    "ChaosInjector",
    "CampaignCheckpoint",
    "CheckpointState",
    "AttemptHandle",
    "Executor",
    "ExecutorLost",
    "LocalPoolExecutor",
    "SubprocessExecutor",
    "PROTOCOL_VERSION",
    "ChannelClosed",
    "PipeChannel",
    "RetryPolicy",
    "CampaignReport",
    "ShardOutcome",
    "ShardRun",
    "ShardSpec",
    "backoff_rng",
    "CHAOS_TIMEOUT",
    "DEFAULT_EXECUTOR_RESTARTS",
    "DEFAULT_TIMEOUT",
    "CampaignConfigError",
    "CampaignInterrupted",
    "default_jobs",
    "run_campaign",
    "run_worker_group",
]
