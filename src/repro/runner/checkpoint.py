"""JSONL campaign checkpointing with a torn-write-tolerant loader.

Layout: line 1 is a ``manifest`` record (experiment, options, planned
shard ids/seeds); every subsequent line is one completed ``shard``
record carrying its JSON payload.  The manifest is written atomically
(:func:`repro.io.atomic_write_text`); all other records are appended
with flush + fsync (:func:`repro.io.append_jsonl`), so a crash — or the
chaos injector — can at worst tear individual lines.

Distributed campaigns add two record kinds, both pure functions of the
plan and the executor topology (no clocks — the determinism lint's
FTMCD02 applies to every checkpoint write):

- ``lease`` — appended *before* a shard attempt is dispatched to an
  executor: ``{"type": "lease", "id": ..., "executor": ...,
  "attempt": n, "incarnation": k}``.  A lease without a matching
  ``shard`` record marks work that was in flight when something died.
- ``heartbeat`` — appended when an executor (re)starts:
  ``{"type": "heartbeat", "executor": ..., "incarnation": k}`` — the
  durable trail of executor incarnations for post-mortems.

The loader is deliberately forgiving, in two distinct ways.  Lines
that do not parse (torn writes) are *skipped and counted* in
``corrupt_lines``.  Well-formed records whose ``type`` is simply not
recognised — e.g. a future ftmc's record kinds read by this binary —
are *skipped and counted separately* in ``unknown_records``, so
``--resume`` across versions degrades to a warning instead of refusing
or miscounting corruption.  A shard whose record was torn is simply
absent from the loaded state, and the supervisor re-executes it —
re-deriving the lost work instead of refusing to resume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.io import append_jsonl, atomic_write_text

__all__ = [
    "CheckpointState",
    "CampaignCheckpoint",
    "CHECKPOINT_VERSION",
    "KNOWN_RECORD_KINDS",
]

CHECKPOINT_VERSION = 1

#: Record kinds this loader understands; anything else well-formed is a
#: forward-compatibility skip (``unknown_records``), not corruption.
KNOWN_RECORD_KINDS = frozenset({"manifest", "shard", "lease", "heartbeat"})


@dataclass
class CheckpointState:
    """Everything recoverable from a checkpoint file on disk."""

    manifest: dict[str, Any] | None = None
    #: Completed shard records keyed by shard id (last record wins).
    shards: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Latest dispatch lease per shard id (last record wins).
    leases: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Executor (re)start records observed, in order.
    heartbeats: list[dict[str, Any]] = field(default_factory=list)
    #: Lines that did not parse as JSON records (torn writes).
    corrupt_lines: int = 0
    #: Well-formed records of an unrecognised kind (newer writer?).
    unknown_records: int = 0

    def payload(self, shard_id: str) -> Any:
        return self.shards[shard_id]["payload"]

    def stale_leases(self) -> list[str]:
        """Shard ids leased to an executor but never checkpointed.

        On ``--resume`` these mark attempts that were in flight when
        the previous run (or one of its executors) died; the supervisor
        simply re-executes them — the lease never blocks anything.
        """
        return sorted(i for i in self.leases if i not in self.shards)


class CampaignCheckpoint:
    """One campaign's JSONL checkpoint file."""

    def __init__(self, path: str) -> None:
        self.path = path

    def create(self, manifest: dict[str, Any]) -> None:
        """Start a fresh checkpoint: atomically write the manifest line."""
        record = {"type": "manifest", "version": CHECKPOINT_VERSION, **manifest}
        atomic_write_text(self.path, json.dumps(record, separators=(",", ":")) + "\n")

    def append_shard(
        self, shard_id: str, index: int, seed: int, attempts: int, payload: Any
    ) -> None:
        """Durably record one completed shard."""
        append_jsonl(
            self.path,
            {
                "type": "shard",
                "id": shard_id,
                "index": index,
                "seed": seed,
                "attempts": attempts,
                "payload": payload,
            },
        )

    def append_lease(
        self, shard_id: str, executor: str, attempt: int, incarnation: int
    ) -> None:
        """Durably record a dispatch lease (before the attempt starts)."""
        append_jsonl(
            self.path,
            {
                "type": "lease",
                "id": shard_id,
                "executor": executor,
                "attempt": attempt,
                "incarnation": incarnation,
            },
        )

    def append_heartbeat(self, executor: str, incarnation: int) -> None:
        """Durably record an executor (re)start."""
        append_jsonl(
            self.path,
            {
                "type": "heartbeat",
                "executor": executor,
                "incarnation": incarnation,
            },
        )

    def load(self) -> CheckpointState:
        """Tolerantly read the checkpoint back (skip torn lines)."""
        state = CheckpointState()
        try:
            with open(self.path) as handle:
                content = handle.read()
        except FileNotFoundError:
            return state
        for line in content.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                state.corrupt_lines += 1
                continue
            if not isinstance(record, dict):
                state.corrupt_lines += 1
                continue
            kind = record.get("type")
            if kind == "manifest" and state.manifest is None:
                state.manifest = record
            elif kind == "shard" and "id" in record and "payload" in record:
                state.shards[str(record["id"])] = record
            elif kind == "lease" and "id" in record:
                state.leases[str(record["id"])] = record
            elif kind == "heartbeat":
                state.heartbeats.append(record)
            elif isinstance(kind, str) and kind not in KNOWN_RECORD_KINDS:
                # Forward compatibility: a newer ftmc may append record
                # kinds this binary has never heard of.  Skip them with
                # a count — never crash or call them corruption.
                state.unknown_records += 1
            else:
                # Malformed known kind (duplicate manifest, shard with
                # no payload, ...): corruption, same as a torn line.
                state.corrupt_lines += 1
        return state
