"""JSONL campaign checkpointing with a torn-write-tolerant loader.

Layout: line 1 is a ``manifest`` record (experiment, options, planned
shard ids/seeds); every subsequent line is one completed ``shard``
record carrying its JSON payload.  The manifest is written atomically
(:func:`repro.io.atomic_write_text`); shard records are appended with
flush + fsync (:func:`repro.io.append_jsonl`), so a crash — or the chaos
injector — can at worst tear individual lines.

The loader is deliberately forgiving: unparseable lines are *skipped and
counted*, never fatal.  A shard whose record was torn is simply absent
from the loaded state, and the supervisor re-executes it — re-deriving
the lost work instead of refusing to resume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.io import append_jsonl, atomic_write_text

__all__ = ["CheckpointState", "CampaignCheckpoint", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


@dataclass
class CheckpointState:
    """Everything recoverable from a checkpoint file on disk."""

    manifest: dict[str, Any] | None = None
    #: Completed shard records keyed by shard id (last record wins).
    shards: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Lines that did not parse as JSON records (torn writes).
    corrupt_lines: int = 0

    def payload(self, shard_id: str) -> Any:
        return self.shards[shard_id]["payload"]


class CampaignCheckpoint:
    """One campaign's JSONL checkpoint file."""

    def __init__(self, path: str) -> None:
        self.path = path

    def create(self, manifest: dict[str, Any]) -> None:
        """Start a fresh checkpoint: atomically write the manifest line."""
        record = {"type": "manifest", "version": CHECKPOINT_VERSION, **manifest}
        atomic_write_text(self.path, json.dumps(record, separators=(",", ":")) + "\n")

    def append_shard(
        self, shard_id: str, index: int, seed: int, attempts: int, payload: Any
    ) -> None:
        """Durably record one completed shard."""
        append_jsonl(
            self.path,
            {
                "type": "shard",
                "id": shard_id,
                "index": index,
                "seed": seed,
                "attempts": attempts,
                "payload": payload,
            },
        )

    def load(self) -> CheckpointState:
        """Tolerantly read the checkpoint back (skip torn lines)."""
        state = CheckpointState()
        try:
            with open(self.path) as handle:
                content = handle.read()
        except FileNotFoundError:
            return state
        for line in content.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                state.corrupt_lines += 1
                continue
            if not isinstance(record, dict):
                state.corrupt_lines += 1
                continue
            kind = record.get("type")
            if kind == "manifest" and state.manifest is None:
                state.manifest = record
            elif kind == "shard" and "id" in record and "payload" in record:
                state.shards[str(record["id"])] = record
            else:
                state.corrupt_lines += 1
        return state
