"""Retry policy: bounded attempts with exponential backoff and jitter.

The runner applies the paper's own medicine to the harness: a failed
shard is *re-executed* a bounded number of times — the direct analogue
of a task's re-execution profile ``n_i`` (Section 3) — before the
campaign degrades gracefully and records the shard as failed.

Backoff is exponential with multiplicative jitter.  The jitter draws
from a caller-supplied :class:`random.Random`, so a campaign seeded for
reproduction produces the same delay schedule every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failed shard is re-executed.

    ``max_retries`` bounds *additional* attempts: a shard is executed at
    most ``max_retries + 1`` times in total (mirroring an ``n_i``
    re-execution profile with ``n_i = max_retries + 1`` executions).
    """

    max_retries: int = 2
    base_delay: float = 0.5
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay {self.max_delay} below base_delay {self.base_delay}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    @property
    def attempts(self) -> int:
        """Total execution budget per shard (first try + retries)."""
        return self.max_retries + 1

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``delay = min(min(base * factor^(attempt-1), max) * (1 + jitter*u),
        max)`` with ``u`` uniform in ``[-1, 1]`` from ``rng`` (no jitter
        when ``rng`` is ``None``).  ``max_delay`` caps the *jittered*
        value, so no schedule ever waits longer than ``max_delay``.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.base_delay * self.factor ** (attempt - 1), self.max_delay)
        if rng is not None and self.jitter > 0.0:
            delay = min(
                delay * (1.0 + self.jitter * (2.0 * rng.random() - 1.0)),
                self.max_delay,
            )
        return delay
