"""Worker-process entry point for campaign shards.

Each shard attempt runs in its own process so that a crash, hang, or
out-of-control computation cannot take the supervisor down — process
isolation is the harness-level analogue of the paper's assumption that
a faulty job execution is detected and contained at its completion.

The worker's only channel back is a one-shot pipe message containing a
JSON document ``{"ok": true, "payload": ...}`` or ``{"ok": false,
"error": "..."}``.  Payloads are serialised to JSON *inside the worker*
so that non-serialisable payloads surface as shard failures, and so
every payload the supervisor ever sees has been through the same JSON
normalisation as a checkpointed one (byte-identical resume).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Mapping

from repro.obs.trace import reset_inherited_session
from repro.runner.chaos import CHAOS_CRASH_EXIT, CRASH, HANG

__all__ = ["shard_worker", "DELAY_ENV"]

#: Environment hook: float seconds every worker sleeps before computing.
#: A chaos/testing aid — it widens the window in which a kill signal
#: lands mid-shard (see docs/robustness.md); leave unset in production.
DELAY_ENV = "FTMC_SHARD_DELAY"


def configured_delay() -> float:
    """The worker start delay from :data:`DELAY_ENV` (0 when unset/bad)."""
    raw = os.environ.get(DELAY_ENV)
    if not raw:
        return 0.0
    try:
        return max(0.0, float(raw))
    except ValueError:
        return 0.0


def shard_worker(
    conn: Any,
    experiment: str,
    params: Mapping[str, Any],
    chaos_action: str | None,
    delay: float,
) -> None:
    """Execute one shard and send the JSON-encoded outcome over ``conn``."""
    from repro.runner.campaigns import get_campaign

    # A forked worker inherits the supervisor's open trace stream; it
    # must never write to (or flush) the parent's file descriptor.
    reset_inherited_session()
    if delay > 0:
        time.sleep(delay)
    if chaos_action == CRASH:
        # Simulated transient fault: die abruptly, skipping all cleanup.
        os._exit(CHAOS_CRASH_EXIT)
    if chaos_action == HANG:
        while True:  # simulated livelock; the watchdog must reap us
            time.sleep(3600)
    try:
        payload = get_campaign(experiment).execute(dict(params))
        text = json.dumps({"ok": True, "payload": payload})
    except Exception as exc:  # report, never crash the pipe protocol
        text = json.dumps({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
    try:
        conn.send(text)
    finally:
        conn.close()
