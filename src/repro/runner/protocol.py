"""Line-delimited JSON protocol between the supervisor and worker groups.

A :class:`~repro.runner.executors.SubprocessExecutor` talks to its
``ftmc campaign-worker`` group over two anonymous pipes (the group's
stdin and stdout).  Every message is one JSON object on one line — the
same framing as the JSONL checkpoint, and for the same reason: a
SIGKILLed writer can at worst tear the final line, and the reader can
always resynchronise on the next newline.

Supervisor -> group ops::

    {"op": "run", "task": 7, "experiment": "fig1", "params": {...},
     "chaos": null, "delay": 0.0}
    {"op": "cancel", "task": 7}          # watchdog fired: kill the child
    {"op": "shutdown"}                   # campaign over: exit cleanly

Group -> supervisor ops::

    {"op": "ready", "pid": 1234, "version": 1}
    {"op": "heartbeat", "seq": 3}
    {"op": "result", "task": 7, "message": "...", "exitcode": 0}

The supervisor never blocks on a group: :class:`PipeChannel` reads the
reply pipe non-blockingly, buffers partial lines, and reports EOF (a
dead or killed group) as :attr:`PipeChannel.closed` instead of raising
mid-sweep.  Torn or foreign lines decode to ``None`` and are counted,
never fatal — executor loss is a survivable event, not a crash.
"""

from __future__ import annotations

import json
import os
from typing import Any, BinaryIO

__all__ = [
    "PROTOCOL_VERSION",
    "ChannelClosed",
    "PipeChannel",
    "decode_line",
    "encode",
]

#: Version stamped into ``ready`` messages; bumped on wire changes.
PROTOCOL_VERSION = 1

_READ_CHUNK = 65536


class ChannelClosed(RuntimeError):
    """The peer's end of the pipe is gone (dead or killed process)."""


def encode(message: dict[str, Any]) -> bytes:
    """One protocol message as a compact JSON line."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict[str, Any] | None:
    """Decode one framed line; ``None`` for torn or foreign content."""
    try:
        record = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(record, dict) and isinstance(record.get("op"), str):
        return record
    return None


class PipeChannel:
    """The supervisor's end of a worker group's pipe pair.

    ``writer``/``reader`` are the binary pipe file objects (the group's
    stdin and stdout from ``Popen``); the channel owns and closes them.
    Ops go out through ``writer``; replies are drained from ``reader``
    without ever blocking the single-threaded scheduler — the read side
    is switched to non-blocking mode and partial lines are buffered
    across :meth:`poll` calls.
    """

    def __init__(self, writer: BinaryIO, reader: BinaryIO) -> None:
        self._writer: BinaryIO | None = writer
        self._reader: BinaryIO | None = reader
        os.set_blocking(reader.fileno(), False)
        self._buffer = b""
        self._eof = False
        #: Torn/foreign reply lines skipped by :meth:`poll`.
        self.dropped = 0

    @property
    def closed(self) -> bool:
        """True once the peer hung up (EOF seen or locally closed)."""
        return self._eof or self._reader is None

    def send(self, message: dict[str, Any]) -> None:
        """Write one op; :class:`ChannelClosed` when the peer is gone."""
        if self._writer is None:
            raise ChannelClosed("channel is closed")
        data = encode(message)
        fd = self._writer.fileno()
        try:
            while data:
                written = os.write(fd, data)
                data = data[written:]
        except (BrokenPipeError, OSError) as exc:
            raise ChannelClosed(f"peer hung up: {exc}") from exc

    def poll(self) -> list[dict[str, Any]]:
        """Drain every complete reply line currently available.

        Data the group wrote before dying stays readable from the pipe
        buffer, so a result that raced an executor kill is still
        recovered here — completed shards are never lost to the kill.
        """
        if self._reader is None:
            return []
        fd = self._reader.fileno()
        while not self._eof:
            try:
                chunk = os.read(fd, _READ_CHUNK)
            except BlockingIOError:
                break
            except OSError:
                self._eof = True
                break
            if not chunk:
                self._eof = True
                break
            self._buffer += chunk
        messages: list[dict[str, Any]] = []
        while b"\n" in self._buffer:
            line, self._buffer = self._buffer.split(b"\n", 1)
            if not line.strip():
                continue
            message = decode_line(line)
            if message is None:
                self.dropped += 1
                continue
            messages.append(message)
        return messages

    def close(self) -> None:
        """Sever both pipe ends (idempotent)."""
        for stream in (self._writer, self._reader):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        self._writer = None
        self._reader = None
