"""Chaos injection: the runner's fault tolerance, itself under test.

Mirrors the simulator's fault-injector idiom
(:mod:`repro.sim.fault_injection`) one layer up: instead of flipping a
job's sanity check, :class:`ChaosInjector` deterministically makes
*worker processes* crash, hang, or tears the checkpoint file — the three
failure modes the supervisor claims to survive.  ``ftmc campaign <exp>
--chaos SEED`` runs a campaign under injection; it must still complete,
with every injected fault visible in the coverage report.

Determinism: the fault plan is a pure function of the chaos seed and the
planned shard ids.  With three or more shards the plan always contains
at least one crash, one hang, and one checkpoint truncation, so a chaos
run exercises every recovery path; with four or more it also designates
one shard whose *executor* is SIGKILLed as a whole at dispatch time
(:data:`KILL_EXECUTOR` — a host-level fault, so it only fires on
topologies whose executors can actually be killed, i.e. ``--executors``
worker groups; under the in-process pool the shard simply runs clean).
Remaining shards draw extra crash or hang faults at
``extra_fault_rate``.  Worker faults fire only on a shard's *first*
attempt — bounded, like the paper's fault model of at most ``n_i - 1``
faults per job — so a retried shard always succeeds, and the executor
kill fires exactly once per campaign.
"""

from __future__ import annotations

import os
import random
from typing import Sequence

__all__ = ["ChaosInjector", "CRASH", "HANG", "TRUNCATE", "KILL_EXECUTOR"]

CRASH = "crash"
HANG = "hang"
TRUNCATE = "truncate"
KILL_EXECUTOR = "kill-executor"

#: Exit status used by chaos-crashed workers (distinguishable in logs).
CHAOS_CRASH_EXIT = 23


class ChaosInjector:
    """Deterministic harness-level fault plan for one campaign."""

    def __init__(
        self,
        seed: int,
        shard_ids: Sequence[str],
        extra_fault_rate: float = 0.25,
    ) -> None:
        if not 0.0 <= extra_fault_rate <= 1.0:
            raise ValueError(
                f"extra fault rate must be in [0, 1], got {extra_fault_rate}"
            )
        self.seed = seed
        self._rng = random.Random(seed)
        order = list(shard_ids)
        self._rng.shuffle(order)
        self._actions: dict[str, str] = {}
        for shard_id, action in zip(order, (CRASH, HANG, TRUNCATE, KILL_EXECUTOR)):
            self._actions[shard_id] = action
        for shard_id in order[4:]:
            if self._rng.random() < extra_fault_rate:
                self._actions[shard_id] = self._rng.choice((CRASH, HANG))

    def plan(self) -> dict[str, str]:
        """The full fault plan (shard id -> injected fault)."""
        return dict(self._actions)

    def worker_action(self, shard_id: str, attempt: int) -> str | None:
        """Fault to inject into this worker attempt (first attempt only)."""
        if attempt != 1:
            return None
        action = self._actions.get(shard_id)
        return action if action in (CRASH, HANG) else None

    def should_truncate_after(self, shard_id: str) -> bool:
        """Whether to tear the checkpoint right after this shard commits."""
        return self._actions.get(shard_id) == TRUNCATE

    def executor_kill_shard(self) -> str | None:
        """The shard whose executor gets SIGKILLed at dispatch (if any).

        The supervisor fires this at most once per campaign, when the
        designated shard is first dispatched onto a killable executor:
        the whole worker-group session is SIGKILLed, its pipe severed,
        and the shard's freshly written lease record torn — the full
        host-loss failure signature, on demand.
        """
        for shard_id, action in self._actions.items():
            if action == KILL_EXECUTOR:
                return shard_id
        return None

    @staticmethod
    def truncate_checkpoint(path: str) -> bool:
        """Simulate a torn write: cut the checkpoint's last line in half.

        Returns ``False`` when the file has no shard record to tear
        (nothing after the manifest line).  Uses :func:`os.truncate`, so
        no write-mode ``open`` is needed (FTMCC05 stays clean).
        """
        with open(path, "rb") as handle:
            data = handle.read()
        stripped = data.rstrip(b"\n")
        last_newline = stripped.rfind(b"\n")
        if last_newline < 0:
            return False  # only one line: never tear the manifest
        last_line = stripped[last_newline + 1 :]
        keep = max(1, len(last_line) // 2)
        os.truncate(path, last_newline + 1 + keep)
        return True
