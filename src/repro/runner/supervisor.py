"""The campaign supervisor: worker pool, watchdogs, retries, checkpoints.

:func:`run_campaign` drives a sharded experiment to completion the way
the paper drives a fault-tolerant task set: every shard runs in an
isolated worker with a timeout watchdog; a crashed, hung, or raising
shard is re-executed with exponential backoff (bounded attempts, like an
``n_i`` re-execution profile); each completed shard is durably
checkpointed; and when a shard exhausts its budget the campaign
*degrades gracefully* — it finalises the shards that did complete and
reports exact coverage instead of crashing.

Shards execute on a bounded pool of up to ``jobs`` concurrent worker
processes (default :func:`default_jobs`; ``jobs=1`` reproduces the
serial scheduler exactly).  The scheduler is a single-threaded loop
over per-shard state machines (:class:`~repro.runner.shards.ShardRun`):
each live shard owns its pipe, its watchdog deadline, and its
retry/backoff state, and backoff is *non-blocking* — a per-shard
"ready at" monotonic timestamp instead of sleeping the supervisor, so
one shard's backoff never stalls the rest of the pool.

Determinism contract: checkpoint shard records may land in completion
order, but every shard's payload is a pure function of its spec, and
backoff jitter draws from a per-shard stream
(:func:`~repro.runner.shards.backoff_rng`) rather than a shared one —
so result and coverage files are byte-identical across ``jobs`` values
(timing fields aside), across ``--resume``, and under ``--chaos``.

Interruption contract: on SIGINT/SIGTERM the supervisor kills **all**
live workers, leaves the checkpoint in place, and raises
:class:`CampaignInterrupted` (CLI exit code ``128 + signum``: 130 for
SIGINT, 143 for SIGTERM).  ``--resume`` then skips every checkpointed
shard and — because payloads always round-trip through JSON — finalises
result files byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from typing import Any, Callable

from repro.io import atomic_write_json
from repro.obs import clock
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runner.campaigns import CampaignDefinition, get_campaign
from repro.runner.chaos import ChaosInjector
from repro.runner.checkpoint import CampaignCheckpoint
from repro.runner.retry import RetryPolicy
from repro.runner.shards import (
    COMPLETED,
    CampaignReport,
    ShardOutcome,
    ShardRun,
    ShardSpec,
    backoff_rng,
)
from repro.runner.worker import configured_delay, shard_worker

__all__ = [
    "run_campaign",
    "default_jobs",
    "CampaignInterrupted",
    "CampaignConfigError",
    "DEFAULT_TIMEOUT",
    "CHAOS_TIMEOUT",
]

#: Per-shard watchdog budget (seconds) when none is given.
DEFAULT_TIMEOUT = 120.0
#: Watchdog budget under chaos, where hangs are injected on purpose.
CHAOS_TIMEOUT = 5.0

#: Scheduler sweep interval (seconds) when no shard made progress.
_POLL_TICK = 0.02

EventHook = Callable[[str], None]


def default_jobs() -> int:
    """The default worker-pool width: ``min(os.cpu_count(), 4)``."""
    return max(1, min(os.cpu_count() or 1, 4))


class CampaignInterrupted(RuntimeError):
    """Raised when a signal stops the campaign (checkpoint retained)."""

    def __init__(self, signum: int) -> None:
        super().__init__(f"campaign interrupted by signal {signum}")
        self.signum = signum

    @property
    def exit_code(self) -> int:
        return 128 + self.signum


class CampaignConfigError(ValueError):
    """Unusable campaign configuration (bad resume state, bad target)."""


def _normalised(data: Any) -> Any:
    """JSON round-trip, so tuples/lists and int/float compare canonically."""
    return json.loads(json.dumps(data))


def _context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _span_id(handle: Any) -> int | None:
    return handle.span_id if handle is not None else None


class _Supervisor:
    def __init__(
        self,
        campaign: CampaignDefinition,
        options: dict[str, Any],
        output_dir: str,
        timeout: float,
        retry: RetryPolicy,
        chaos: ChaosInjector | None,
        on_event: EventHook | None,
        shard_delay: float,
        jobs: int,
    ) -> None:
        self.campaign = campaign
        self.options = options
        self.output_dir = output_dir
        self.timeout = timeout
        self.retry = retry
        self.chaos = chaos
        self.shard_delay = shard_delay
        self.jobs = jobs
        self._on_event = on_event
        self._ctx = _context()
        self._signum: int | None = None
        self._planned = 0
        self._started_count = 0
        self.checkpoint = CampaignCheckpoint(
            os.path.join(output_dir, f"{campaign.name}.checkpoint.jsonl")
        )

    # -- plumbing --------------------------------------------------------------

    def event(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def _note_signal(self, signum: int, frame: Any) -> None:
        self._signum = signum

    def _check_interrupted(self) -> None:
        if self._signum is not None:
            raise CampaignInterrupted(self._signum)

    # -- the pool scheduler ----------------------------------------------------

    def run_shards(self, outcomes: list[ShardOutcome]) -> None:
        """Drive every non-resumed shard to completion, ``jobs`` at a time.

        Single-threaded scheduler over per-shard state machines: each
        iteration fills free pool slots with waiting shards (plan
        order), then sweeps the live shards — reaping finished workers,
        enforcing watchdog deadlines, and starting the next attempt of
        any shard whose backoff ``ready_at`` has passed.  A live shard
        holds its slot across retries, so ``jobs=1`` reproduces the
        serial scheduler's exact ordering.  On interruption (or any
        supervisor-level error) every live worker is killed before the
        exception propagates.
        """
        self._planned = len(outcomes)
        waiting = [
            ShardRun(outcome=o, rng=backoff_rng(o.spec))
            for o in outcomes
            if not o.resumed
        ]
        live: list[ShardRun] = []
        # pop() must yield the lowest free slot, so keep them descending.
        free_slots = list(range(self.jobs - 1, -1, -1))
        try:
            while waiting or live:
                self._check_interrupted()
                progressed = False
                while waiting and free_slots:
                    run = waiting.pop(0)
                    run.slot = free_slots.pop()
                    live.append(run)
                    self._start_attempt(run)
                    progressed = True
                now = clock.monotonic()
                for run in list(live):
                    if run.running:
                        progressed |= self._poll_running(run, live, free_slots)
                    elif now >= run.ready_at:
                        self._start_attempt(run)
                        progressed = True
                if not progressed:
                    time.sleep(_POLL_TICK)
        except BaseException:
            self._kill_live(live)
            raise

    def _start_attempt(self, run: ShardRun) -> None:
        """Launch the next worker attempt for a live shard."""
        spec = run.spec
        attempt = run.outcome.attempts + 1
        run.outcome.attempts = attempt
        if not run.started:
            run.started_monotonic = clock.monotonic()
            self._started_count += 1
            suffix = f", slot {run.slot}" if self.jobs > 1 else ""
            self.event(
                f"shard {spec.id} ({self._started_count}/{self._planned}"
                f"{suffix})"
            )
            run.span = obs_trace.open_span("shard", id=spec.id, slot=run.slot)
        chaos_action = (
            self.chaos.worker_action(spec.id, attempt) if self.chaos else None
        )
        if chaos_action is not None:
            self.event(f"chaos: injecting {chaos_action} into shard {spec.id}")
        obs_metrics.inc("runner.attempts")
        run.attempt_span = obs_trace.open_span(
            "shard.attempt",
            parent=_span_id(run.span),
            id=spec.id,
            attempt=attempt,
            slot=run.slot,
        )
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=shard_worker,
            args=(
                child_conn,
                self.campaign.name,
                dict(spec.params),
                chaos_action,
                self.shard_delay,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        run.process = process
        run.conn = parent_conn
        run.message = None
        run.deadline = clock.monotonic() + self.timeout

    def _poll_running(
        self, run: ShardRun, live: list[ShardRun], free_slots: list[int]
    ) -> bool:
        """One watchdog/reap sweep over a running shard; True on progress."""
        run.message = self._drain(run.conn, run.message)
        process = run.process
        if process.is_alive():
            if clock.monotonic() > run.deadline:
                self._kill(process)
                obs_metrics.inc("runner.timeouts")
                obs_trace.event(
                    "shard.timeout",
                    span_id=_span_id(run.attempt_span),
                    id=run.spec.id,
                    budget_s=self.timeout,
                )
                self._close_attempt(run)
                self._attempt_failed(
                    run, live, free_slots,
                    f"timed out after {self.timeout:g}s",
                )
                return True
            return False
        # The worker exited: drain the pipe's tail, then judge the attempt.
        run.message = self._drain(run.conn, run.message)
        process.join()
        ok, payload_or_error = self._judge(run.message, process.exitcode)
        self._close_attempt(run)
        if ok:
            self._complete(run, live, free_slots, payload_or_error)
        else:
            self._attempt_failed(run, live, free_slots, payload_or_error)
        return True

    @staticmethod
    def _judge(message: str | None, exitcode: int | None) -> tuple[bool, Any]:
        """Grade a finished attempt from its pipe message and exit code.

        A received ok-payload wins over a nonzero exit code: a worker
        that delivered ``{"ok": true}`` and then died in interpreter
        teardown did the work, and discarding its result would burn a
        retry re-deriving a payload the supervisor already holds.
        """
        if message is not None:
            try:
                outcome = json.loads(message)
            except ValueError:
                outcome = None
            if isinstance(outcome, dict):
                if outcome.get("ok"):
                    return True, outcome["payload"]
                return False, f"shard raised: {outcome.get('error', 'unknown')}"
        if exitcode != 0:
            return False, f"worker crashed (exit {exitcode})"
        return False, "worker exited without a result"

    def _close_attempt(self, run: ShardRun) -> None:
        """Detach the worker process/pipe and close the attempt span."""
        run.conn.close()
        run.conn = None
        run.process = None
        if run.attempt_span is not None:
            run.attempt_span.end()
            run.attempt_span = None

    def _complete(
        self, run: ShardRun, live: list[ShardRun], free_slots: list[int],
        payload: Any,
    ) -> None:
        spec = run.spec
        outcome = run.outcome
        outcome.status = COMPLETED
        outcome.payload = payload
        obs_metrics.inc("runner.shards.completed")
        self.checkpoint.append_shard(
            spec.id, spec.index, spec.seed, outcome.attempts, payload
        )
        if self.chaos and self.chaos.should_truncate_after(spec.id):
            if ChaosInjector.truncate_checkpoint(self.checkpoint.path):
                self.event(f"chaos: tore the checkpoint after shard {spec.id}")
        self._retire(run, live, free_slots)

    def _attempt_failed(
        self, run: ShardRun, live: list[ShardRun], free_slots: list[int],
        error: Any,
    ) -> None:
        spec = run.spec
        outcome = run.outcome
        outcome.errors.append(str(error))
        self.event(
            f"shard {spec.id} attempt {outcome.attempts}/{self.retry.attempts} "
            f"failed: {error}"
        )
        if outcome.attempts < self.retry.attempts:
            obs_metrics.inc("runner.retries")
            obs_trace.event(
                "shard.retry",
                span_id=_span_id(run.span),
                id=spec.id,
                attempt=outcome.attempts,
            )
            delay = self.retry.delay(outcome.attempts, run.rng)
            obs_trace.event(
                "shard.backoff",
                span_id=_span_id(run.span),
                id=spec.id,
                delay_s=delay,
            )
            # Non-blocking backoff: the shard stays live in its slot and
            # the scheduler simply will not restart it before ready_at.
            run.ready_at = clock.monotonic() + delay
            return
        obs_metrics.inc("runner.shards.failed")
        self.event(
            f"shard {spec.id} failed permanently after "
            f"{outcome.attempts} attempt(s); campaign degrades"
        )
        self._retire(run, live, free_slots)

    def _retire(
        self, run: ShardRun, live: list[ShardRun], free_slots: list[int]
    ) -> None:
        """Close out a finished shard and return its slot to the pool."""
        if run.started_monotonic is not None:
            run.outcome.duration_s = clock.monotonic() - run.started_monotonic
        if run.span is not None:
            run.span.end()
            run.span = None
        live.remove(run)
        free_slots.append(run.slot)  # type: ignore[arg-type]
        free_slots.sort(reverse=True)

    def _kill_live(self, live: list[ShardRun]) -> None:
        """Kill every live worker (interrupt/error path)."""
        for run in live:
            if run.process is not None:
                self._kill(run.process)
                run.process = None
            if run.conn is not None:
                run.conn.close()
                run.conn = None

    @staticmethod
    def _drain(conn: Any, message: str | None) -> str | None:
        try:
            while conn.poll(0):
                message = conn.recv()
        except (EOFError, OSError):
            pass
        return message

    @staticmethod
    def _kill(process: Any) -> None:
        process.terminate()
        process.join(0.5)
        if process.is_alive():
            process.kill()
            process.join()

    # -- recovery and finalisation ---------------------------------------------

    def recover_torn_records(self, outcomes: list[ShardOutcome]) -> int:
        """Re-append completed shards whose on-disk record was torn."""
        state = self.checkpoint.load()
        corrupt = state.corrupt_lines
        for outcome in outcomes:
            if outcome.completed and outcome.spec.id not in state.shards:
                spec = outcome.spec
                self.checkpoint.append_shard(
                    spec.id, spec.index, spec.seed, outcome.attempts,
                    outcome.payload,
                )
                outcome.recovered = True
                self.event(
                    f"recovered: re-wrote torn checkpoint record for {spec.id}"
                )
        return corrupt

    def finalize(self, report: CampaignReport) -> None:
        payloads = {
            o.spec.id: o.payload for o in report.outcomes if o.completed
        }
        for result in self.campaign.finalize(payloads, self.options):
            json_path = os.path.join(self.output_dir, f"{result.name}.json")
            csv_path = os.path.join(self.output_dir, f"{result.name}.csv")
            atomic_write_json(json_path, result.to_dict())
            result.to_csv(csv_path)
            report.result_files.extend([json_path, csv_path])
        coverage_path = os.path.join(
            self.output_dir, f"{self.campaign.name}.coverage.json"
        )
        atomic_write_json(coverage_path, report.coverage())
        report.coverage_path = coverage_path


def _load_resume_state(
    supervisor: _Supervisor, shards: list[ShardSpec], options: dict[str, Any]
) -> dict[str, dict[str, Any]]:
    """Validate and load a checkpoint for ``--resume``."""
    state = supervisor.checkpoint.load()
    if state.manifest is None:
        raise CampaignConfigError(
            f"cannot resume: no usable checkpoint at {supervisor.checkpoint.path}"
        )
    manifest = state.manifest
    if manifest.get("experiment") != supervisor.campaign.name:
        raise CampaignConfigError(
            "cannot resume: checkpoint belongs to campaign "
            f"{manifest.get('experiment')!r}, not {supervisor.campaign.name!r}"
        )
    if manifest.get("options") != _normalised(options):
        raise CampaignConfigError(
            "cannot resume: campaign options changed since the checkpoint "
            "was written (rerun without --resume to start over)"
        )
    planned = [
        {"id": s.id, "index": s.index, "seed": s.seed} for s in shards
    ]
    if manifest.get("shards") != _normalised(planned):
        raise CampaignConfigError(
            "cannot resume: the shard plan no longer matches the checkpoint"
        )
    return state.shards


def run_campaign(
    experiment: str,
    options: dict[str, Any] | None = None,
    output_dir: str | None = None,
    resume: bool = False,
    chaos_seed: int | None = None,
    timeout: float | None = None,
    retry: RetryPolicy | None = None,
    on_event: EventHook | None = None,
    shard_delay: float | None = None,
    jobs: int | None = None,
) -> CampaignReport:
    """Run (or resume) a fault-tolerant experiment campaign.

    ``jobs`` bounds the worker pool (default :func:`default_jobs`;
    ``1`` preserves the serial scheduler exactly).  See the module
    docstring for the execution model and ``docs/robustness.md`` for the
    full contract.  Raises :class:`CampaignInterrupted` on
    SIGINT/SIGTERM and :class:`CampaignConfigError` on unusable
    configuration; any other shard-level failure degrades the campaign
    instead of raising.
    """
    campaign = get_campaign(experiment)
    if options is None:
        options = campaign.default_options()
    if output_dir is None:
        output_dir = os.path.join("results", "campaigns", experiment)
    os.makedirs(output_dir, exist_ok=True)
    if timeout is None:
        timeout = CHAOS_TIMEOUT if chaos_seed is not None else DEFAULT_TIMEOUT
    if retry is None:
        retry = RetryPolicy(base_delay=0.1) if chaos_seed is not None else RetryPolicy()
    if shard_delay is None:
        shard_delay = configured_delay()
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise CampaignConfigError(f"jobs must be >= 1, got {jobs}")

    shards = campaign.plan(options)
    if not shards:
        raise CampaignConfigError(f"campaign {experiment!r} planned no shards")
    ids = [s.id for s in shards]
    if len(set(ids)) != len(ids):
        raise CampaignConfigError(f"campaign {experiment!r} has duplicate shard ids")

    chaos = ChaosInjector(chaos_seed, ids) if chaos_seed is not None else None
    supervisor = _Supervisor(
        campaign, options, output_dir, timeout, retry, chaos, on_event,
        shard_delay, jobs,
    )

    resumed_records: dict[str, dict[str, Any]] = {}
    if resume:
        resumed_records = _load_resume_state(supervisor, shards, options)
    else:
        supervisor.checkpoint.create(
            {
                "experiment": campaign.name,
                "options": _normalised(options),
                "shards": [
                    {"id": s.id, "index": s.index, "seed": s.seed}
                    for s in shards
                ],
                "created_unix": clock.wall_time(),
            }
        )

    report = CampaignReport(
        experiment=campaign.name,
        output_dir=output_dir,
        checkpoint_path=supervisor.checkpoint.path,
        chaos_seed=chaos_seed,
    )

    # Install signal handlers (main thread only; tests may call us from
    # worker threads where signal.signal raises ValueError).
    previous_handlers: dict[int, Any] = {}
    in_main_thread = threading.current_thread() is threading.main_thread()
    if in_main_thread:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(
                signum, supervisor._note_signal
            )
    try:
        with obs_trace.span(
            "campaign", experiment=campaign.name, shards=len(shards), jobs=jobs
        ):
            for spec in shards:
                outcome = ShardOutcome(spec=spec)
                report.outcomes.append(outcome)
                record = resumed_records.get(spec.id)
                if record is not None:
                    outcome.status = COMPLETED
                    outcome.resumed = True
                    outcome.payload = record["payload"]
                    outcome.attempts = int(record.get("attempts", 1))
            supervisor.run_shards(report.outcomes)
            report.corrupt_checkpoint_lines = supervisor.recover_torn_records(
                report.outcomes
            )
            supervisor.finalize(report)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    return report
