"""The campaign supervisor: watchdogs, retries, checkpoints, recovery.

:func:`run_campaign` drives a sharded experiment to completion the way
the paper drives a fault-tolerant task set: every shard runs in an
isolated worker with a timeout watchdog; a crashed, hung, or raising
shard is re-executed with exponential backoff (bounded attempts, like an
``n_i`` re-execution profile); each completed shard is durably
checkpointed; and when a shard exhausts its budget the campaign
*degrades gracefully* — it finalises the shards that did complete and
reports exact coverage instead of crashing.

Interruption contract: on SIGINT/SIGTERM the supervisor kills the active
worker, leaves the checkpoint in place, and raises
:class:`CampaignInterrupted` (CLI exit code ``128 + signum``: 130 for
SIGINT, 143 for SIGTERM).  ``--resume`` then skips every checkpointed
shard and — because payloads always round-trip through JSON — finalises
result files byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import signal
import threading
import time
from typing import Any, Callable

from repro.io import atomic_write_json
from repro.obs import clock
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runner.campaigns import CampaignDefinition, get_campaign
from repro.runner.chaos import ChaosInjector
from repro.runner.checkpoint import CampaignCheckpoint
from repro.runner.retry import RetryPolicy
from repro.runner.shards import (
    COMPLETED,
    CampaignReport,
    ShardOutcome,
    ShardSpec,
)
from repro.runner.worker import configured_delay, shard_worker

__all__ = [
    "run_campaign",
    "CampaignInterrupted",
    "CampaignConfigError",
    "DEFAULT_TIMEOUT",
    "CHAOS_TIMEOUT",
]

#: Per-shard watchdog budget (seconds) when none is given.
DEFAULT_TIMEOUT = 120.0
#: Watchdog budget under chaos, where hangs are injected on purpose.
CHAOS_TIMEOUT = 5.0

EventHook = Callable[[str], None]


class CampaignInterrupted(RuntimeError):
    """Raised when a signal stops the campaign (checkpoint retained)."""

    def __init__(self, signum: int) -> None:
        super().__init__(f"campaign interrupted by signal {signum}")
        self.signum = signum

    @property
    def exit_code(self) -> int:
        return 128 + self.signum


class CampaignConfigError(ValueError):
    """Unusable campaign configuration (bad resume state, bad target)."""


def _normalised(data: Any) -> Any:
    """JSON round-trip, so tuples/lists and int/float compare canonically."""
    return json.loads(json.dumps(data))


def _context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class _Supervisor:
    def __init__(
        self,
        campaign: CampaignDefinition,
        options: dict[str, Any],
        output_dir: str,
        timeout: float,
        retry: RetryPolicy,
        chaos: ChaosInjector | None,
        on_event: EventHook | None,
        shard_delay: float,
    ) -> None:
        self.campaign = campaign
        self.options = options
        self.output_dir = output_dir
        self.timeout = timeout
        self.retry = retry
        self.chaos = chaos
        self.shard_delay = shard_delay
        self._on_event = on_event
        self._ctx = _context()
        self._rng = random.Random(int(options.get("seed", 0)))
        self._signum: int | None = None
        self.checkpoint = CampaignCheckpoint(
            os.path.join(output_dir, f"{campaign.name}.checkpoint.jsonl")
        )

    # -- plumbing --------------------------------------------------------------

    def event(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def _note_signal(self, signum: int, frame: Any) -> None:
        self._signum = signum

    def _check_interrupted(self) -> None:
        if self._signum is not None:
            raise CampaignInterrupted(self._signum)

    def _sleep(self, seconds: float) -> None:
        deadline = clock.monotonic() + seconds
        while clock.monotonic() < deadline:
            self._check_interrupted()
            time.sleep(min(0.05, max(0.0, deadline - clock.monotonic())))
        self._check_interrupted()

    # -- one worker attempt ----------------------------------------------------

    def _run_attempt(
        self, spec: ShardSpec, chaos_action: str | None
    ) -> tuple[bool, Any]:
        """Execute one attempt; returns ``(ok, payload-or-error-text)``."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=shard_worker,
            args=(
                child_conn,
                self.campaign.name,
                dict(spec.params),
                chaos_action,
                self.shard_delay,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = clock.monotonic() + self.timeout
        message: str | None = None
        try:
            while True:
                if self._signum is not None:
                    self._kill(process)
                    raise CampaignInterrupted(self._signum)
                # Drain early so a large payload cannot deadlock the pipe.
                message = self._drain(parent_conn, message)
                if not process.is_alive():
                    break
                if clock.monotonic() > deadline:
                    self._kill(process)
                    obs_metrics.inc("runner.timeouts")
                    obs_trace.event(
                        "shard.timeout", id=spec.id, budget_s=self.timeout
                    )
                    return False, f"timed out after {self.timeout:g}s"
                process.join(0.05)
            message = self._drain(parent_conn, message)
            process.join()
            if process.exitcode != 0:
                return False, f"worker crashed (exit {process.exitcode})"
            if message is None:
                return False, "worker exited without a result"
            outcome = json.loads(message)
            if not outcome.get("ok"):
                return False, f"shard raised: {outcome.get('error', 'unknown')}"
            return True, outcome["payload"]
        finally:
            parent_conn.close()

    @staticmethod
    def _drain(conn: Any, message: str | None) -> str | None:
        try:
            while conn.poll(0):
                message = conn.recv()
        except (EOFError, OSError):
            pass
        return message

    @staticmethod
    def _kill(process: Any) -> None:
        process.terminate()
        process.join(0.5)
        if process.is_alive():
            process.kill()
            process.join()

    # -- shard lifecycle -------------------------------------------------------

    def run_shard(self, outcome: ShardOutcome) -> None:
        started = clock.monotonic()
        try:
            with obs_trace.span("shard", id=outcome.spec.id):
                self._run_shard_attempts(outcome)
        finally:
            outcome.duration_s = clock.monotonic() - started

    def _run_shard_attempts(self, outcome: ShardOutcome) -> None:
        spec = outcome.spec
        for attempt in range(1, self.retry.attempts + 1):
            self._check_interrupted()
            outcome.attempts = attempt
            chaos_action = (
                self.chaos.worker_action(spec.id, attempt) if self.chaos else None
            )
            if chaos_action is not None:
                self.event(f"chaos: injecting {chaos_action} into shard {spec.id}")
            obs_metrics.inc("runner.attempts")
            with obs_trace.span("shard.attempt", id=spec.id, attempt=attempt):
                ok, payload_or_error = self._run_attempt(spec, chaos_action)
            if ok:
                outcome.status = COMPLETED
                outcome.payload = payload_or_error
                obs_metrics.inc("runner.shards.completed")
                self.checkpoint.append_shard(
                    spec.id, spec.index, spec.seed, attempt, payload_or_error
                )
                if self.chaos and self.chaos.should_truncate_after(spec.id):
                    if ChaosInjector.truncate_checkpoint(self.checkpoint.path):
                        self.event(
                            f"chaos: tore the checkpoint after shard {spec.id}"
                        )
                return
            outcome.errors.append(str(payload_or_error))
            self.event(
                f"shard {spec.id} attempt {attempt}/{self.retry.attempts} "
                f"failed: {payload_or_error}"
            )
            if attempt < self.retry.attempts:
                obs_metrics.inc("runner.retries")
                obs_trace.event("shard.retry", id=spec.id, attempt=attempt)
                delay = self.retry.delay(attempt, self._rng)
                obs_trace.event("shard.backoff", id=spec.id, delay_s=delay)
                self._sleep(delay)
        obs_metrics.inc("runner.shards.failed")
        self.event(
            f"shard {spec.id} failed permanently after "
            f"{outcome.attempts} attempt(s); campaign degrades"
        )

    # -- recovery and finalisation ---------------------------------------------

    def recover_torn_records(self, outcomes: list[ShardOutcome]) -> int:
        """Re-append completed shards whose on-disk record was torn."""
        state = self.checkpoint.load()
        corrupt = state.corrupt_lines
        for outcome in outcomes:
            if outcome.completed and outcome.spec.id not in state.shards:
                spec = outcome.spec
                self.checkpoint.append_shard(
                    spec.id, spec.index, spec.seed, outcome.attempts,
                    outcome.payload,
                )
                outcome.recovered = True
                self.event(
                    f"recovered: re-wrote torn checkpoint record for {spec.id}"
                )
        return corrupt

    def finalize(self, report: CampaignReport) -> None:
        payloads = {
            o.spec.id: o.payload for o in report.outcomes if o.completed
        }
        for result in self.campaign.finalize(payloads, self.options):
            json_path = os.path.join(self.output_dir, f"{result.name}.json")
            csv_path = os.path.join(self.output_dir, f"{result.name}.csv")
            atomic_write_json(json_path, result.to_dict())
            result.to_csv(csv_path)
            report.result_files.extend([json_path, csv_path])
        coverage_path = os.path.join(
            self.output_dir, f"{self.campaign.name}.coverage.json"
        )
        atomic_write_json(coverage_path, report.coverage())
        report.coverage_path = coverage_path


def _load_resume_state(
    supervisor: _Supervisor, shards: list[ShardSpec], options: dict[str, Any]
) -> dict[str, dict[str, Any]]:
    """Validate and load a checkpoint for ``--resume``."""
    state = supervisor.checkpoint.load()
    if state.manifest is None:
        raise CampaignConfigError(
            f"cannot resume: no usable checkpoint at {supervisor.checkpoint.path}"
        )
    manifest = state.manifest
    if manifest.get("experiment") != supervisor.campaign.name:
        raise CampaignConfigError(
            "cannot resume: checkpoint belongs to campaign "
            f"{manifest.get('experiment')!r}, not {supervisor.campaign.name!r}"
        )
    if manifest.get("options") != _normalised(options):
        raise CampaignConfigError(
            "cannot resume: campaign options changed since the checkpoint "
            "was written (rerun without --resume to start over)"
        )
    planned = [
        {"id": s.id, "index": s.index, "seed": s.seed} for s in shards
    ]
    if manifest.get("shards") != _normalised(planned):
        raise CampaignConfigError(
            "cannot resume: the shard plan no longer matches the checkpoint"
        )
    return state.shards


def run_campaign(
    experiment: str,
    options: dict[str, Any] | None = None,
    output_dir: str | None = None,
    resume: bool = False,
    chaos_seed: int | None = None,
    timeout: float | None = None,
    retry: RetryPolicy | None = None,
    on_event: EventHook | None = None,
    shard_delay: float | None = None,
) -> CampaignReport:
    """Run (or resume) a fault-tolerant experiment campaign.

    See the module docstring for the execution model and
    ``docs/robustness.md`` for the full contract.  Raises
    :class:`CampaignInterrupted` on SIGINT/SIGTERM and
    :class:`CampaignConfigError` on unusable configuration; any other
    shard-level failure degrades the campaign instead of raising.
    """
    campaign = get_campaign(experiment)
    if options is None:
        options = campaign.default_options()
    if output_dir is None:
        output_dir = os.path.join("results", "campaigns", experiment)
    os.makedirs(output_dir, exist_ok=True)
    if timeout is None:
        timeout = CHAOS_TIMEOUT if chaos_seed is not None else DEFAULT_TIMEOUT
    if retry is None:
        retry = RetryPolicy(base_delay=0.1) if chaos_seed is not None else RetryPolicy()
    if shard_delay is None:
        shard_delay = configured_delay()

    shards = campaign.plan(options)
    if not shards:
        raise CampaignConfigError(f"campaign {experiment!r} planned no shards")
    ids = [s.id for s in shards]
    if len(set(ids)) != len(ids):
        raise CampaignConfigError(f"campaign {experiment!r} has duplicate shard ids")

    chaos = ChaosInjector(chaos_seed, ids) if chaos_seed is not None else None
    supervisor = _Supervisor(
        campaign, options, output_dir, timeout, retry, chaos, on_event,
        shard_delay,
    )

    resumed_records: dict[str, dict[str, Any]] = {}
    if resume:
        resumed_records = _load_resume_state(supervisor, shards, options)
    else:
        supervisor.checkpoint.create(
            {
                "experiment": campaign.name,
                "options": _normalised(options),
                "shards": [
                    {"id": s.id, "index": s.index, "seed": s.seed}
                    for s in shards
                ],
                "created_unix": clock.wall_time(),
            }
        )

    report = CampaignReport(
        experiment=campaign.name,
        output_dir=output_dir,
        checkpoint_path=supervisor.checkpoint.path,
        chaos_seed=chaos_seed,
    )

    # Install signal handlers (main thread only; tests may call us from
    # worker threads where signal.signal raises ValueError).
    previous_handlers: dict[int, Any] = {}
    in_main_thread = threading.current_thread() is threading.main_thread()
    if in_main_thread:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(
                signum, supervisor._note_signal
            )
    try:
        with obs_trace.span(
            "campaign", experiment=campaign.name, shards=len(shards)
        ):
            for spec in shards:
                outcome = ShardOutcome(spec=spec)
                report.outcomes.append(outcome)
                record = resumed_records.get(spec.id)
                if record is not None:
                    outcome.status = COMPLETED
                    outcome.resumed = True
                    outcome.payload = record["payload"]
                    outcome.attempts = int(record.get("attempts", 1))
                    continue
                supervisor.event(
                    f"shard {spec.id} ({len(report.outcomes)}/{len(shards)})"
                )
                supervisor.run_shard(outcome)
            report.corrupt_checkpoint_lines = supervisor.recover_torn_records(
                report.outcomes
            )
            supervisor.finalize(report)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    return report
