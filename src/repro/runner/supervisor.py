"""The campaign supervisor: executors, watchdogs, retries, checkpoints.

:func:`run_campaign` drives a sharded experiment to completion the way
the paper drives a fault-tolerant task set: every shard runs in an
isolated worker with a timeout watchdog; a crashed, hung, or raising
shard is re-executed with exponential backoff (bounded attempts, like an
``n_i`` re-execution profile); each completed shard is durably
checkpointed; and when a shard exhausts its budget the campaign
*degrades gracefully* — it finalises the shards that did complete and
reports exact coverage instead of crashing.

Shards execute on a bounded pool of up to ``jobs`` concurrent slots
(default :func:`default_jobs`; ``jobs=1`` reproduces the serial
scheduler exactly).  Slots are served by pluggable **executors**
(:mod:`repro.runner.executors`) — failure domains that can die as a
whole.  The default :class:`~repro.runner.executors.LocalPoolExecutor`
forks a worker per attempt, exactly as the supervisor always has;
``executors=N`` instead spreads the slots round-robin over ``N``
``ftmc campaign-worker`` group processes
(:class:`~repro.runner.executors.SubprocessExecutor`), each spoken to
over a line-delimited JSON pipe protocol.

The scheduler is a single-threaded loop over per-shard state machines
(:class:`~repro.runner.shards.ShardRun`): each live shard owns its
attempt handle, its watchdog deadline, and its retry/backoff state, and
backoff is *non-blocking* — a per-shard "ready at" monotonic timestamp
instead of sleeping the supervisor, so one shard's backoff never stalls
the rest of the pool.

Executor fault tolerance: before each dispatch onto a killable
topology the supervisor appends a **lease** record to the checkpoint;
when an executor dies (crash, chaos SIGKILL, wedged heartbeat) the
supervisor recovers any results the group flushed before dying, then
*reclaims* every other leased shard — the in-flight attempt is rolled
back as if it never started, the shard is requeued at the front of the
plan, and it re-executes on a surviving (or restarted) executor.
Restarts are bounded (``executor_restarts`` per executor, with the same
jittered backoff policy as shard retries, drawn from a per-executor
stream).  When every executor is lost and retired, remaining shards are
failed as orphans and the campaign degrades (exit code 3) instead of
hanging.

Determinism contract: checkpoint shard records may land in completion
order, but every shard's payload is a pure function of its spec, and
backoff jitter draws from a per-shard stream
(:func:`~repro.runner.shards.backoff_rng`) rather than a shared one —
so result and coverage files are byte-identical across ``jobs`` and
``executors`` values (timing fields aside), across ``--resume``, and
under ``--chaos``.  Reclaimed attempts keep that contract: because the
rollback erases the attempt from the shard's accounting, an executor
loss is invisible in the coverage bytes — it costs wall-clock time, not
reproducibility.

Interruption contract: on SIGINT/SIGTERM the supervisor kills **all**
live workers, leaves the checkpoint in place, and raises
:class:`CampaignInterrupted` (CLI exit code ``128 + signum``: 130 for
SIGINT, 143 for SIGTERM).  ``--resume`` then skips every checkpointed
shard and — because payloads always round-trip through JSON — finalises
result files byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from typing import Any, Callable

from repro.core import shared_cache
from repro.io import atomic_write_json
from repro.obs import clock
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runner.campaigns import CampaignDefinition, get_campaign
from repro.runner.chaos import ChaosInjector
from repro.runner.checkpoint import CampaignCheckpoint, CheckpointState
from repro.runner.executors import (
    EXEC_RESTARTING,
    EXEC_RETIRED,
    EXEC_UP,
    Executor,
    ExecutorLost,
    LocalPoolExecutor,
    SubprocessExecutor,
)
from repro.runner.retry import RetryPolicy
from repro.runner.shards import (
    COMPLETED,
    CampaignReport,
    ShardOutcome,
    ShardRun,
    ShardSpec,
    backoff_rng,
)
from repro.runner.worker import configured_delay, shard_worker

__all__ = [
    "run_campaign",
    "default_jobs",
    "CampaignInterrupted",
    "CampaignConfigError",
    "DEFAULT_TIMEOUT",
    "CHAOS_TIMEOUT",
    "DEFAULT_EXECUTOR_RESTARTS",
]

#: Per-shard watchdog budget (seconds) when none is given.
DEFAULT_TIMEOUT = 120.0
#: Watchdog budget under chaos, where hangs are injected on purpose.
CHAOS_TIMEOUT = 5.0
#: Bounded executor-level fault tolerance: restarts per executor.
DEFAULT_EXECUTOR_RESTARTS = 2

#: Scheduler sweep interval (seconds) when no shard made progress.
_POLL_TICK = 0.02

EventHook = Callable[[str], None]


def default_jobs() -> int:
    """The default worker-pool width: ``min(os.cpu_count(), 4)``."""
    return max(1, min(os.cpu_count() or 1, 4))


class CampaignInterrupted(RuntimeError):
    """Raised when a signal stops the campaign (checkpoint retained)."""

    def __init__(self, signum: int) -> None:
        super().__init__(f"campaign interrupted by signal {signum}")
        self.signum = signum

    @property
    def exit_code(self) -> int:
        return 128 + self.signum


class CampaignConfigError(ValueError):
    """Unusable campaign configuration (bad resume state, bad target)."""


def _normalised(data: Any) -> Any:
    """JSON round-trip, so tuples/lists and int/float compare canonically."""
    return json.loads(json.dumps(data))


def _span_id(handle: Any) -> int | None:
    return handle.span_id if handle is not None else None


class _Supervisor:
    def __init__(
        self,
        campaign: CampaignDefinition,
        options: dict[str, Any],
        output_dir: str,
        timeout: float,
        retry: RetryPolicy,
        chaos: ChaosInjector | None,
        on_event: EventHook | None,
        shard_delay: float,
        jobs: int,
        executors: list[Executor],
        executor_restarts: int,
    ) -> None:
        self.campaign = campaign
        self.options = options
        self.output_dir = output_dir
        self.timeout = timeout
        self.retry = retry
        self.chaos = chaos
        self.shard_delay = shard_delay
        self.jobs = jobs
        self.executors = executors
        self.executor_restarts = executor_restarts
        self._on_event = on_event
        self._signum: int | None = None
        self._planned = 0
        self._started_count = 0
        #: In-flight attempts reclaimed from lost executors (reporting).
        self.reclaimed_leases = 0
        #: Shards whose chaos executor-kill has already fired.
        self._chaos_killed: set[str] = set()
        # Round-robin the pool slots over the executors so losing one
        # executor in an N-executor topology costs 1/N of the pool, not
        # a contiguous block of the plan.
        self._slot_executor: dict[int, Executor] = {}
        for slot in range(jobs):
            executor = executors[slot % len(executors)]
            self._slot_executor[slot] = executor
            executor.slots.append(slot)
        # Leases only matter when an executor can actually be lost; the
        # in-process pool keeps the original checkpoint layout (and its
        # fsync count) byte-for-byte.
        self._record_leases = any(
            e.can_kill or e.can_restart for e in executors
        )
        self.checkpoint = CampaignCheckpoint(
            os.path.join(output_dir, f"{campaign.name}.checkpoint.jsonl")
        )

    # -- plumbing --------------------------------------------------------------

    def event(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def _note_signal(self, signum: int, frame: Any) -> None:
        self._signum = signum

    def _check_interrupted(self) -> None:
        if self._signum is not None:
            raise CampaignInterrupted(self._signum)

    # -- executor lifecycle ----------------------------------------------------

    def start_executors(self) -> None:
        """Bring every executor up (and record its first heartbeat)."""
        for executor in self.executors:
            executor.start()
            if self._record_leases:
                self.checkpoint.append_heartbeat(
                    executor.eid, executor.incarnation
                )

    def shutdown_executors(self) -> None:
        """Tear every executor down (campaign end or interrupt)."""
        for executor in self.executors:
            executor.shutdown()

    def _sweep_executors(
        self,
        waiting: list[ShardRun],
        live: list[ShardRun],
        free_slots: list[int],
    ) -> bool:
        """Liveness/restart sweep over the executor fleet.

        Detects dead executors (process exit, severed pipe, silent
        heartbeat) and reclaims their leases; fires due restarts and
        returns the revived executor's slots to the pool; and when the
        whole fleet is retired, fails the remaining shards as orphans so
        the campaign degrades instead of hanging.  Returns True when
        anything changed (progress, for the scheduler's idle tick).
        """
        progressed = False
        for executor in self.executors:
            if executor.state == EXEC_UP:
                executor.pump()
                if not executor.alive():
                    self._executor_lost(executor, waiting, live, free_slots)
                    progressed = True
            elif executor.state == EXEC_RESTARTING:
                if clock.monotonic() >= executor.restart_ready_at:
                    executor.restart()
                    executor.state = EXEC_UP
                    if self._record_leases:
                        self.checkpoint.append_heartbeat(
                            executor.eid, executor.incarnation
                        )
                    obs_metrics.inc("runner.executors.restarts")
                    obs_trace.event(
                        "executor.restart",
                        executor=executor.eid,
                        incarnation=executor.incarnation,
                    )
                    self.event(
                        f"executor {executor.eid} restarted "
                        f"(incarnation {executor.incarnation})"
                    )
                    free_slots.extend(executor.slots)
                    free_slots.sort(reverse=True)
                    progressed = True
        if waiting and all(e.state == EXEC_RETIRED for e in self.executors):
            self._fail_orphans(waiting)
            progressed = True
        return progressed

    def _executor_lost(
        self,
        executor: Executor,
        waiting: list[ShardRun],
        live: list[ShardRun],
        free_slots: list[int],
    ) -> None:
        """Reclaim a dead executor's leases and schedule its replacement.

        Results the group flushed before dying are still sitting in the
        pipe buffer: one final pump recovers them, and those shards are
        judged and checkpointed normally — an executor loss never costs
        a completed shard.  Every other leased shard is rolled back as
        if its attempt had never started (attempt count and error list
        untouched) and requeued at the front of the plan, which is what
        keeps coverage byte-identical whether or not an executor died.
        """
        if executor.state != EXEC_UP:
            return
        executor.pump()  # last drain: recover results that raced the death
        slots = set(executor.slots)
        self.event(f"executor {executor.eid} lost (slots {sorted(slots)})")
        obs_metrics.inc("runner.executors.lost")
        obs_trace.event(
            "executor.lost",
            executor=executor.eid,
            incarnation=executor.incarnation,
        )
        # 1) Shards whose result survived the crash complete normally.
        for run in [r for r in live if r.slot in slots]:
            if run.handle is not None:
                run.handle.poll()
                if run.handle.finished():
                    ok, verdict = self._judge(
                        run.handle.message, run.handle.exitcode
                    )
                    self._close_attempt(run)
                    if ok:
                        self._complete(run, live, free_slots, verdict)
                    else:
                        self._attempt_failed(run, live, free_slots, verdict)
        # 2) Everything else leased to the executor is reclaimed: the
        #    in-flight attempt is erased from the shard's accounting and
        #    the shard rejoins the queue ahead of fresh work.  Runs that
        #    were merely backing off in one of the executor's slots keep
        #    their ready_at and retry state untouched.
        reclaimed = [r for r in live if r.slot in slots]
        for run in reclaimed:
            if run.handle is not None:
                run.outcome.attempts -= 1
                self.reclaimed_leases += 1
                obs_metrics.inc("runner.leases.reclaimed")
                obs_trace.event(
                    "lease.reclaimed",
                    span_id=_span_id(run.span),
                    id=run.spec.id,
                    executor=executor.eid,
                )
                self.event(
                    f"reclaimed lease: shard {run.spec.id} requeued after "
                    f"losing executor {executor.eid}"
                )
                self._close_attempt(run, error=True)
            live.remove(run)
            run.slot = None
        waiting[:0] = reclaimed
        # 3) The dead executor's slots leave the pool until it restarts.
        free_slots[:] = [s for s in free_slots if s not in slots]
        self._schedule_restart_or_retire(executor)

    def _schedule_restart_or_retire(self, executor: Executor) -> None:
        if executor.can_restart and (
            executor.restarts_used < self.executor_restarts
        ):
            executor.restarts_used += 1
            delay = self.retry.delay(executor.restarts_used, executor.rng)
            executor.restart_ready_at = clock.monotonic() + delay
            executor.state = EXEC_RESTARTING
            self.event(
                f"executor {executor.eid}: restart "
                f"{executor.restarts_used}/{self.executor_restarts} "
                f"in {delay:.2f}s"
            )
            return
        executor.state = EXEC_RETIRED
        obs_trace.event("executor.retired", executor=executor.eid)
        self.event(
            f"executor {executor.eid} retired (restart budget exhausted)"
        )

    def _fail_orphans(self, waiting: list[ShardRun]) -> None:
        """Fail every unfinished shard: the whole fleet is gone."""
        for run in waiting:
            outcome = run.outcome
            outcome.errors.append(
                "orphaned: every executor was lost and retired"
            )
            obs_metrics.inc("runner.shards.failed")
            self.event(
                f"shard {run.spec.id} orphaned: no executors left; "
                "campaign degrades"
            )
            if run.started_monotonic is not None:
                outcome.duration_s = (
                    clock.monotonic() - run.started_monotonic
                )
            if run.span is not None:
                run.span.end(error=True)
                run.span = None
        waiting.clear()

    def _maybe_kill_executor(self, run: ShardRun, executor: Executor) -> None:
        """Fire the chaos executor-kill if this dispatch is the trigger.

        SIGKILLs the whole worker-group session, severs its pipe, and
        tears the lease record just written for this shard — the full
        host-loss signature.  Fires at most once per campaign, keyed to
        the shard the chaos plan designated, and only on topologies
        whose executors can actually be killed.
        """
        if self.chaos is None or not executor.can_kill:
            return
        spec_id = run.spec.id
        if spec_id in self._chaos_killed:
            return
        if self.chaos.executor_kill_shard() != spec_id:
            return
        self._chaos_killed.add(spec_id)
        self.event(
            f"chaos: SIGKILLing executor {executor.eid} mid-shard {spec_id}"
        )
        obs_trace.event(
            "executor.chaos_kill", executor=executor.eid, id=spec_id
        )
        executor.kill()
        # The lease for this dispatch is the checkpoint's last line
        # (appends only happen on this thread); tearing it simulates an
        # executor dying mid-lease-write.
        if ChaosInjector.truncate_checkpoint(self.checkpoint.path):
            self.event(f"chaos: tore the lease record for shard {spec_id}")

    # -- the pool scheduler ----------------------------------------------------

    def run_shards(self, outcomes: list[ShardOutcome]) -> None:
        """Drive every non-resumed shard to completion, ``jobs`` at a time.

        Single-threaded scheduler over per-shard state machines: each
        iteration sweeps the executor fleet (liveness, lease
        reclamation, due restarts), fills free pool slots with ready
        waiting shards (plan order; reclaimed shards go first), then
        sweeps the live shards — reaping finished attempts, enforcing
        watchdog deadlines, and starting the next attempt of any shard
        whose backoff ``ready_at`` has passed.  A live shard holds its
        slot across retries, so ``jobs=1`` reproduces the serial
        scheduler's exact ordering.  On interruption (or any
        supervisor-level error) every live attempt is killed before the
        exception propagates.
        """
        self._planned = len(outcomes)
        waiting = [
            ShardRun(outcome=o, rng=backoff_rng(o.spec))
            for o in outcomes
            if not o.resumed
        ]
        live: list[ShardRun] = []
        # pop() must yield the lowest free slot, so keep them descending.
        free_slots = list(range(self.jobs - 1, -1, -1))
        try:
            while waiting or live:
                self._check_interrupted()
                progressed = self._sweep_executors(waiting, live, free_slots)
                while waiting and free_slots:
                    now = clock.monotonic()
                    index = next(
                        (
                            i
                            for i, r in enumerate(waiting)
                            if r.ready_at <= now
                        ),
                        None,
                    )
                    if index is None:
                        break
                    run = waiting.pop(index)
                    run.slot = free_slots.pop()
                    live.append(run)
                    self._dispatch(run, waiting, live, free_slots)
                    progressed = True
                now = clock.monotonic()
                for run in list(live):
                    if run.running:
                        progressed |= self._poll_running(run, live, free_slots)
                    elif now >= run.ready_at:
                        self._dispatch(run, waiting, live, free_slots)
                        progressed = True
                if not progressed:
                    time.sleep(_POLL_TICK)
        except BaseException:
            self._kill_live(live)
            raise

    def _dispatch(
        self,
        run: ShardRun,
        waiting: list[ShardRun],
        live: list[ShardRun],
        free_slots: list[int],
    ) -> None:
        """Start an attempt on the run's slot, absorbing executor death."""
        executor = self._slot_executor[run.slot]  # type: ignore[index]
        try:
            self._start_attempt(run, executor)
        except ExecutorLost:
            # The executor died under the dispatch; reclaim its leases
            # (including this very run, which never actually started).
            self._executor_lost(executor, waiting, live, free_slots)

    def _start_attempt(self, run: ShardRun, executor: Executor) -> None:
        """Launch the next worker attempt for a live shard.

        Dispatch happens *before* any state mutation: if the executor is
        already dead, :class:`ExecutorLost` propagates with the shard's
        accounting untouched, and the reclaim path simply requeues it.
        """
        spec = run.spec
        attempt = run.outcome.attempts + 1
        chaos_action = (
            self.chaos.worker_action(spec.id, attempt) if self.chaos else None
        )
        if self._record_leases:
            self.checkpoint.append_lease(
                spec.id, executor.eid, attempt, executor.incarnation
            )
        handle = executor.start_attempt(
            self.campaign.name, spec.params, chaos_action, self.shard_delay
        )
        run.outcome.attempts = attempt
        if not run.started:
            run.started_monotonic = clock.monotonic()
            self._started_count += 1
            suffix = f", slot {run.slot}" if self.jobs > 1 else ""
            self.event(
                f"shard {spec.id} ({self._started_count}/{self._planned}"
                f"{suffix})"
            )
            run.span = obs_trace.open_span(
                "shard", id=spec.id, slot=run.slot, executor=executor.eid
            )
        if chaos_action is not None:
            self.event(f"chaos: injecting {chaos_action} into shard {spec.id}")
        obs_metrics.inc("runner.attempts")
        run.attempt_span = obs_trace.open_span(
            "shard.attempt",
            parent=_span_id(run.span),
            id=spec.id,
            attempt=attempt,
            slot=run.slot,
            executor=executor.eid,
        )
        run.handle = handle
        run.executor = executor
        run.deadline = clock.monotonic() + self.timeout
        self._maybe_kill_executor(run, executor)

    def _poll_running(
        self, run: ShardRun, live: list[ShardRun], free_slots: list[int]
    ) -> bool:
        """One watchdog/reap sweep over a running shard; True on progress."""
        handle = run.handle
        handle.poll()
        if not handle.finished():
            if clock.monotonic() > run.deadline:
                handle.cancel()
                obs_metrics.inc("runner.timeouts")
                obs_trace.event(
                    "shard.timeout",
                    span_id=_span_id(run.attempt_span),
                    id=run.spec.id,
                    budget_s=self.timeout,
                )
                self._close_attempt(run, error=True)
                self._attempt_failed(
                    run, live, free_slots,
                    f"timed out after {self.timeout:g}s",
                )
                return True
            return False
        ok, verdict = self._judge(handle.message, handle.exitcode)
        self._close_attempt(run)
        if ok:
            self._complete(run, live, free_slots, verdict)
        else:
            self._attempt_failed(run, live, free_slots, verdict)
        return True

    @staticmethod
    def _judge(message: str | None, exitcode: int | None) -> tuple[bool, Any]:
        """Grade a finished attempt from its pipe message and exit code.

        A received ok-payload wins over a nonzero exit code: a worker
        that delivered ``{"ok": true}`` and then died in interpreter
        teardown did the work, and discarding its result would burn a
        retry re-deriving a payload the supervisor already holds.
        """
        if message is not None:
            try:
                outcome = json.loads(message)
            except ValueError:
                outcome = None
            if isinstance(outcome, dict):
                if outcome.get("ok"):
                    return True, outcome["payload"]
                return False, f"shard raised: {outcome.get('error', 'unknown')}"
        if exitcode != 0:
            return False, f"worker crashed (exit {exitcode})"
        return False, "worker exited without a result"

    def _close_attempt(self, run: ShardRun, error: bool = False) -> None:
        """Detach the attempt handle and close the attempt span."""
        if run.handle is not None:
            run.handle.close()
            run.handle = None
        run.executor = None
        if run.attempt_span is not None:
            run.attempt_span.end(error=error)
            run.attempt_span = None

    def _complete(
        self, run: ShardRun, live: list[ShardRun], free_slots: list[int],
        payload: Any,
    ) -> None:
        spec = run.spec
        outcome = run.outcome
        outcome.status = COMPLETED
        outcome.payload = payload
        obs_metrics.inc("runner.shards.completed")
        self.checkpoint.append_shard(
            spec.id, spec.index, spec.seed, outcome.attempts, payload
        )
        if self.chaos and self.chaos.should_truncate_after(spec.id):
            if ChaosInjector.truncate_checkpoint(self.checkpoint.path):
                self.event(f"chaos: tore the checkpoint after shard {spec.id}")
        self._retire(run, live, free_slots)

    def _attempt_failed(
        self, run: ShardRun, live: list[ShardRun], free_slots: list[int],
        error: Any,
    ) -> None:
        spec = run.spec
        outcome = run.outcome
        outcome.errors.append(str(error))
        self.event(
            f"shard {spec.id} attempt {outcome.attempts}/{self.retry.attempts} "
            f"failed: {error}"
        )
        if outcome.attempts < self.retry.attempts:
            obs_metrics.inc("runner.retries")
            obs_trace.event(
                "shard.retry",
                span_id=_span_id(run.span),
                id=spec.id,
                attempt=outcome.attempts,
            )
            delay = self.retry.delay(outcome.attempts, run.rng)
            obs_trace.event(
                "shard.backoff",
                span_id=_span_id(run.span),
                id=spec.id,
                delay_s=delay,
            )
            # Non-blocking backoff: the shard stays live in its slot and
            # the scheduler simply will not restart it before ready_at.
            run.ready_at = clock.monotonic() + delay
            return
        obs_metrics.inc("runner.shards.failed")
        self.event(
            f"shard {spec.id} failed permanently after "
            f"{outcome.attempts} attempt(s); campaign degrades"
        )
        self._retire(run, live, free_slots)

    def _retire(
        self, run: ShardRun, live: list[ShardRun], free_slots: list[int]
    ) -> None:
        """Close out a finished shard and return its slot to the pool."""
        if run.started_monotonic is not None:
            run.outcome.duration_s = clock.monotonic() - run.started_monotonic
        if run.span is not None:
            run.span.end()
            run.span = None
        live.remove(run)
        free_slots.append(run.slot)  # type: ignore[arg-type]
        free_slots.sort(reverse=True)

    def _kill_live(self, live: list[ShardRun]) -> None:
        """Kill every live attempt (interrupt/error path)."""
        for run in live:
            if run.handle is not None:
                try:
                    run.handle.cancel()
                except Exception:
                    pass
                run.handle.close()
                run.handle = None
            run.executor = None

    # -- recovery and finalisation ---------------------------------------------

    def recover_torn_records(
        self, outcomes: list[ShardOutcome]
    ) -> CheckpointState:
        """Re-append completed shards whose on-disk record was torn."""
        state = self.checkpoint.load()
        for outcome in outcomes:
            if outcome.completed and outcome.spec.id not in state.shards:
                spec = outcome.spec
                self.checkpoint.append_shard(
                    spec.id, spec.index, spec.seed, outcome.attempts,
                    outcome.payload,
                )
                outcome.recovered = True
                self.event(
                    f"recovered: re-wrote torn checkpoint record for {spec.id}"
                )
        return state

    def finalize(self, report: CampaignReport) -> None:
        payloads = {
            o.spec.id: o.payload for o in report.outcomes if o.completed
        }
        for result in self.campaign.finalize(payloads, self.options):
            json_path = os.path.join(self.output_dir, f"{result.name}.json")
            csv_path = os.path.join(self.output_dir, f"{result.name}.csv")
            atomic_write_json(json_path, result.to_dict())
            result.to_csv(csv_path)
            report.result_files.extend([json_path, csv_path])
        coverage_path = os.path.join(
            self.output_dir, f"{self.campaign.name}.coverage.json"
        )
        atomic_write_json(coverage_path, report.coverage())
        report.coverage_path = coverage_path


def _load_resume_state(
    supervisor: _Supervisor, shards: list[ShardSpec], options: dict[str, Any]
) -> CheckpointState:
    """Validate and load a checkpoint for ``--resume``."""
    state = supervisor.checkpoint.load()
    if state.manifest is None:
        raise CampaignConfigError(
            f"cannot resume: no usable checkpoint at {supervisor.checkpoint.path}"
        )
    manifest = state.manifest
    if manifest.get("experiment") != supervisor.campaign.name:
        raise CampaignConfigError(
            "cannot resume: checkpoint belongs to campaign "
            f"{manifest.get('experiment')!r}, not {supervisor.campaign.name!r}"
        )
    if manifest.get("options") != _normalised(options):
        raise CampaignConfigError(
            "cannot resume: campaign options changed since the checkpoint "
            "was written (rerun without --resume to start over)"
        )
    planned = [
        {"id": s.id, "index": s.index, "seed": s.seed} for s in shards
    ]
    if manifest.get("shards") != _normalised(planned):
        raise CampaignConfigError(
            "cannot resume: the shard plan no longer matches the checkpoint"
        )
    return state


def run_campaign(
    experiment: str,
    options: dict[str, Any] | None = None,
    output_dir: str | None = None,
    resume: bool = False,
    chaos_seed: int | None = None,
    timeout: float | None = None,
    retry: RetryPolicy | None = None,
    on_event: EventHook | None = None,
    shard_delay: float | None = None,
    jobs: int | None = None,
    executors: int | None = None,
    executor_restarts: int = DEFAULT_EXECUTOR_RESTARTS,
) -> CampaignReport:
    """Run (or resume) a fault-tolerant experiment campaign.

    ``jobs`` bounds the worker pool (default :func:`default_jobs`;
    ``1`` preserves the serial scheduler exactly).  ``executors=None``
    (the default) runs every slot on the in-process
    :class:`~repro.runner.executors.LocalPoolExecutor`;
    ``executors=N`` spreads the slots over ``N`` ``ftmc
    campaign-worker`` group processes (clamped to ``jobs`` — an
    executor with no slots would never be used), each a failure domain
    the campaign survives: dead executors have their leased shards
    reclaimed and are restarted up to ``executor_restarts`` times with
    jittered backoff.  See the module docstring for the execution model
    and ``docs/robustness.md`` for the full contract.  Raises
    :class:`CampaignInterrupted` on SIGINT/SIGTERM and
    :class:`CampaignConfigError` on unusable configuration; any other
    shard-level failure degrades the campaign instead of raising.
    """
    campaign = get_campaign(experiment)
    if options is None:
        options = campaign.default_options()
    if output_dir is None:
        output_dir = os.path.join("results", "campaigns", experiment)
    os.makedirs(output_dir, exist_ok=True)
    if timeout is None:
        timeout = CHAOS_TIMEOUT if chaos_seed is not None else DEFAULT_TIMEOUT
    if retry is None:
        retry = RetryPolicy(base_delay=0.1) if chaos_seed is not None else RetryPolicy()
    if shard_delay is None:
        shard_delay = configured_delay()
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise CampaignConfigError(f"jobs must be >= 1, got {jobs}")
    if executors is not None and executors < 1:
        raise CampaignConfigError(f"executors must be >= 1, got {executors}")
    if executor_restarts < 0:
        raise CampaignConfigError(
            f"executor restarts must be >= 0, got {executor_restarts}"
        )

    shards = campaign.plan(options)
    if not shards:
        raise CampaignConfigError(f"campaign {experiment!r} planned no shards")
    ids = [s.id for s in shards]
    if len(set(ids)) != len(ids):
        raise CampaignConfigError(f"campaign {experiment!r} has duplicate shard ids")

    if executors is None:
        fleet: list[Executor] = [LocalPoolExecutor("local", worker=shard_worker)]
    else:
        fleet = [
            SubprocessExecutor(f"exec-{i}", i)
            for i in range(min(executors, jobs))
        ]

    chaos = ChaosInjector(chaos_seed, ids) if chaos_seed is not None else None
    supervisor = _Supervisor(
        campaign, options, output_dir, timeout, retry, chaos, on_event,
        shard_delay, jobs, fleet, executor_restarts,
    )

    resumed_records: dict[str, dict[str, Any]] = {}
    report = CampaignReport(
        experiment=campaign.name,
        output_dir=output_dir,
        checkpoint_path=supervisor.checkpoint.path,
        chaos_seed=chaos_seed,
    )
    if resume:
        resume_state = _load_resume_state(supervisor, shards, options)
        resumed_records = resume_state.shards
        stale = resume_state.stale_leases()
        report.stale_leases = len(stale)
        for shard_id in stale:
            supervisor.event(
                f"resume: stale lease for shard {shard_id}; re-executing"
            )
    else:
        supervisor.checkpoint.create(
            {
                "experiment": campaign.name,
                "options": _normalised(options),
                "shards": [
                    {"id": s.id, "index": s.index, "seed": s.seed}
                    for s in shards
                ],
                **clock.metadata_stamp(),
            }
        )

    # Multi-worker campaigns share one schedulability verdict table: the
    # supervisor owns the segment, announces it through the environment
    # (inherited by forked and spawned workers alike), and tears it down
    # with the campaign.  Serial campaigns skip it entirely — their
    # in-process memo already sees every verdict — and any failure to
    # create the segment just runs the campaign uncached (fail-open, like
    # the worker-side attachment).  Verdicts are deterministic functions
    # of their keys, so the cache trades recomputation for wall-clock
    # time without touching result or coverage bytes.
    verdict_cache: shared_cache.SharedVerdictCache | None = None
    previous_env = os.environ.get(shared_cache.ENV_VAR)
    if jobs > 1:
        try:
            verdict_cache = shared_cache.SharedVerdictCache.create()
            os.environ[shared_cache.ENV_VAR] = verdict_cache.name
        except Exception:
            verdict_cache = None

    # Install signal handlers (main thread only; tests may call us from
    # worker threads where signal.signal raises ValueError).
    previous_handlers: dict[int, Any] = {}
    in_main_thread = threading.current_thread() is threading.main_thread()
    if in_main_thread:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(
                signum, supervisor._note_signal
            )
    try:
        with obs_trace.span(
            "campaign",
            experiment=campaign.name,
            shards=len(shards),
            jobs=jobs,
            executors=len(fleet),
        ):
            for spec in shards:
                outcome = ShardOutcome(spec=spec)
                report.outcomes.append(outcome)
                record = resumed_records.get(spec.id)
                if record is not None:
                    outcome.status = COMPLETED
                    outcome.resumed = True
                    outcome.payload = record["payload"]
                    outcome.attempts = int(record.get("attempts", 1))
            supervisor.start_executors()
            supervisor.run_shards(report.outcomes)
            final_state = supervisor.recover_torn_records(report.outcomes)
            report.corrupt_checkpoint_lines = final_state.corrupt_lines
            report.unknown_checkpoint_records = final_state.unknown_records
            report.reclaimed_leases = supervisor.reclaimed_leases
            if final_state.unknown_records:
                supervisor.event(
                    f"checkpoint: skipped {final_state.unknown_records} "
                    "unrecognised record(s) (written by a newer ftmc?)"
                )
            supervisor.finalize(report)
            if verdict_cache is not None:
                report.shared_cache = verdict_cache.stats()
    finally:
        supervisor.shutdown_executors()
        if verdict_cache is not None:
            verdict_cache.destroy()
        if previous_env is None:
            os.environ.pop(shared_cache.ENV_VAR, None)
        else:
            os.environ[shared_cache.ENV_VAR] = previous_env
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    return report
