"""Campaign definitions: how each experiment splits into shards.

A :class:`CampaignDefinition` gives the runner three pure functions:

``plan(options)``
    Deterministically expand the campaign options into an ordered list
    of :class:`~repro.runner.shards.ShardSpec` — the resumable units.
``execute(params)``
    Compute one shard's payload from its JSON params.  Runs inside an
    isolated worker process; must be deterministic (seeds travel in the
    params) and return JSON-serialisable data.
``finalize(payloads, options)``
    Merge the available shard payloads back into
    :class:`~repro.experiments.results.ExperimentResult` objects.  Must
    tolerate *missing* shards — a degraded campaign finalises whatever
    completed.

Because payloads round-trip through JSON both when checkpointed and
when returned from a worker, an interrupted-and-resumed campaign
finalises byte-identical result files to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.experiments.fig3 import (
    DEFAULT_FAILURE_PROBABILITIES,
    DEFAULT_UTILIZATIONS,
    FIG3_PANELS,
    fig3_panel_skeleton,
    fig3_point,
)
from repro.experiments.fms_sweep import SWEEP_COLUMNS, sweep_notes, sweep_point
from repro.experiments.multicore_sweep import (
    DEFAULT_CORES,
    DEFAULT_PER_CORE_UTILIZATION,
    DEFAULT_PLANNER_MAX_NODES,
    multicore_point,
    multicore_skeleton,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.tables import (
    table1,
    table2_example31,
    table3_example41,
    table4_fms,
)
from repro.experiments.validation_campaign import (
    validation_point,
    validation_skeleton,
)
from repro.gen.fms import (
    FMS_DEGRADATION_FACTOR,
    FMS_OPERATION_HOURS,
    canonical_fms,
)
from repro.runner.shards import ShardSpec

__all__ = [
    "CampaignDefinition",
    "CAMPAIGNS",
    "get_campaign",
    "campaign_names",
    "build_options",
]


@dataclass(frozen=True)
class CampaignDefinition:
    """One experiment's sharding contract (see module docstring)."""

    name: str
    description: str
    default_options: Callable[[], dict[str, Any]]
    plan: Callable[[dict[str, Any]], list[ShardSpec]]
    execute: Callable[[dict[str, Any]], Any]
    finalize: Callable[
        [Mapping[str, Any], dict[str, Any]], list[ExperimentResult]
    ]


# -- fig1 / fig2: one shard per n' sweep point ---------------------------------


def _fms_options(mechanism: str) -> dict[str, Any]:
    options: dict[str, Any] = {
        "mechanism": mechanism,
        "n_prime_max": 4,
        "operation_hours": FMS_OPERATION_HOURS,
        "degradation_factor": None,
        "seed": 0,
    }
    if mechanism == "degrade":
        options["degradation_factor"] = FMS_DEGRADATION_FACTOR
    return options


def _fms_plan(options: dict[str, Any]) -> list[ShardSpec]:
    return [
        ShardSpec(
            id=f"nprime-{n_prime}",
            index=n_prime - 1,
            seed=int(options.get("seed", 0)),
            params={
                "mechanism": options["mechanism"],
                "n_prime": n_prime,
                "operation_hours": options["operation_hours"],
                "degradation_factor": options["degradation_factor"],
            },
        )
        for n_prime in range(1, int(options["n_prime_max"]) + 1)
    ]


def _fms_execute(params: dict[str, Any]) -> list[Any]:
    row = sweep_point(
        canonical_fms(),
        params["mechanism"],
        int(params["n_prime"]),
        float(params["operation_hours"]),
        params["degradation_factor"],
    )
    return list(row)


def _fms_finalize(
    payloads: Mapping[str, Any],
    options: dict[str, Any],
    name: str,
    description: str,
) -> list[ExperimentResult]:
    result = ExperimentResult(
        name=name, description=description, columns=list(SWEEP_COLUMNS)
    )
    for n_prime in range(1, int(options["n_prime_max"]) + 1):
        payload = payloads.get(f"nprime-{n_prime}")
        if payload is not None:
            result.add_row(*payload)
    result.extend_notes(
        sweep_notes(
            canonical_fms(),
            options["mechanism"],
            float(options["operation_hours"]),
            options["degradation_factor"],
        )
    )
    return [result]


def _fig1_finalize(
    payloads: Mapping[str, Any], options: dict[str, Any]
) -> list[ExperimentResult]:
    return _fms_finalize(
        payloads,
        options,
        "fig1",
        "FMS: impacts of task killing (U_MC and pfh(LO) vs n'_HI)",
    )


def _fig2_finalize(
    payloads: Mapping[str, Any], options: dict[str, Any]
) -> list[ExperimentResult]:
    df = float(options["degradation_factor"])
    return _fms_finalize(
        payloads,
        options,
        "fig2",
        "FMS: impacts of service degradation "
        f"(df={df:g}; U_MC and pfh(LO) vs n'_HI)",
    )


# -- fig3: one shard per (panel, f, utilization) grid point --------------------


def _fig3_options() -> dict[str, Any]:
    return {
        "panels": ["a", "b", "c", "d"],
        "failure_probabilities": [float(f) for f in DEFAULT_FAILURE_PROBABILITIES],
        "utilizations": [float(u) for u in DEFAULT_UTILIZATIONS],
        "sets_per_point": 500,
        "seed": 0,
    }


def _fig3_plan(options: dict[str, Any]) -> list[ShardSpec]:
    shards: list[ShardSpec] = []
    for panel in options["panels"]:
        for f in options["failure_probabilities"]:
            for point_index, utilization in enumerate(options["utilizations"]):
                shards.append(
                    ShardSpec(
                        id=f"{panel}-f{f:g}-u{utilization:g}",
                        index=len(shards),
                        seed=int(options.get("seed", 0)),
                        params={
                            "panel": panel,
                            "failure_probability": float(f),
                            "point_index": point_index,
                            "utilization": float(utilization),
                            "sets_per_point": int(options["sets_per_point"]),
                            "seed": int(options.get("seed", 0)),
                        },
                    )
                )
    return shards


def _fig3_execute(params: dict[str, Any]) -> list[Any]:
    row = fig3_point(
        FIG3_PANELS[params["panel"]],
        float(params["failure_probability"]),
        int(params["point_index"]),
        float(params["utilization"]),
        int(params["sets_per_point"]),
        int(params["seed"]),
    )
    return list(row)


def _fig3_finalize(
    payloads: Mapping[str, Any], options: dict[str, Any]
) -> list[ExperimentResult]:
    results: list[ExperimentResult] = []
    for panel in options["panels"]:
        for f in options["failure_probabilities"]:
            result = fig3_panel_skeleton(FIG3_PANELS[panel], float(f))
            for utilization in options["utilizations"]:
                payload = payloads.get(f"{panel}-f{f:g}-u{utilization:g}")
                if payload is not None:
                    result.add_row(*payload)
            results.append(result)
    return results


# -- tables: one shard per table -----------------------------------------------

_TABLE_PRODUCERS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1,
    "table2": table2_example31,
    "table3": table3_example41,
    "table4": table4_fms,
}


def _tables_options() -> dict[str, Any]:
    return {"tables": list(_TABLE_PRODUCERS)}


def _tables_plan(options: dict[str, Any]) -> list[ShardSpec]:
    return [
        ShardSpec(id=name, index=index, seed=0, params={"table": name})
        for index, name in enumerate(options["tables"])
    ]


def _tables_execute(params: dict[str, Any]) -> dict[str, Any]:
    return _TABLE_PRODUCERS[params["table"]]().to_dict()


def _tables_finalize(
    payloads: Mapping[str, Any], options: dict[str, Any]
) -> list[ExperimentResult]:
    return [
        ExperimentResult.from_dict(payloads[name])
        for name in options["tables"]
        if name in payloads
    ]


# -- validation: one shard per (mechanism, utilization) point ------------------


def _validation_options() -> dict[str, Any]:
    return {
        "mechanisms": ["kill", "degrade"],
        "utilizations": [0.5, 0.7, 0.9],
        "sets_per_point": 20,
        "runs_per_set": 3,
        "horizon": 120_000.0,
        "probability_scale": 1000.0,
        "lo_level": "D",
        "degradation_factor": 6.0,
        "seed": 0,
    }


def _validation_plan(options: dict[str, Any]) -> list[ShardSpec]:
    shards: list[ShardSpec] = []
    for mechanism in options["mechanisms"]:
        for point_index, utilization in enumerate(options["utilizations"]):
            shards.append(
                ShardSpec(
                    id=f"{mechanism}-u{utilization:g}",
                    index=len(shards),
                    seed=int(options.get("seed", 0)),
                    params={
                        "mechanism": mechanism,
                        "point_index": point_index,
                        "utilization": float(utilization),
                        "sets_per_point": int(options["sets_per_point"]),
                        "runs_per_set": int(options["runs_per_set"]),
                        "horizon": float(options["horizon"]),
                        "probability_scale": float(options["probability_scale"]),
                        "lo_level": options["lo_level"],
                        "degradation_factor": float(options["degradation_factor"]),
                        "seed": int(options.get("seed", 0)),
                    },
                )
            )
    return shards


def _validation_execute(params: dict[str, Any]) -> list[Any]:
    row = validation_point(
        params["mechanism"],
        int(params["point_index"]),
        float(params["utilization"]),
        sets_per_point=int(params["sets_per_point"]),
        runs_per_set=int(params["runs_per_set"]),
        horizon=float(params["horizon"]),
        probability_scale=float(params["probability_scale"]),
        lo_level=params["lo_level"],
        degradation_factor=float(params["degradation_factor"]),
        seed=int(params["seed"]),
    )
    return list(row)


def _validation_finalize(
    payloads: Mapping[str, Any], options: dict[str, Any]
) -> list[ExperimentResult]:
    results: list[ExperimentResult] = []
    for mechanism in options["mechanisms"]:
        result = validation_skeleton(
            mechanism,
            runs_per_set=int(options["runs_per_set"]),
            horizon=float(options["horizon"]),
            probability_scale=float(options["probability_scale"]),
            lo_level=options["lo_level"],
        )
        for utilization in options["utilizations"]:
            payload = payloads.get(f"{mechanism}-u{utilization:g}")
            if payload is not None:
                result.add_row(*payload)
        results.append(result)
    return results


# -- multicore: one shard per core count ---------------------------------------


def _multicore_options() -> dict[str, Any]:
    return {
        "cores": [int(m) for m in DEFAULT_CORES],
        "per_core_utilization": DEFAULT_PER_CORE_UTILIZATION,
        "sets_per_point": 40,
        "backend": "edf-vd",
        "max_nodes": DEFAULT_PLANNER_MAX_NODES,
        "seed": 0,
    }


def _multicore_plan(options: dict[str, Any]) -> list[ShardSpec]:
    return [
        ShardSpec(
            id=f"m{m}",
            index=point_index,
            seed=int(options.get("seed", 0)),
            params={
                "m": int(m),
                "point_index": point_index,
                "per_core_utilization": float(options["per_core_utilization"]),
                "sets_per_point": int(options["sets_per_point"]),
                "backend": options["backend"],
                "max_nodes": int(options["max_nodes"]),
                "seed": int(options.get("seed", 0)),
            },
        )
        for point_index, m in enumerate(options["cores"])
    ]


def _multicore_execute(params: dict[str, Any]) -> list[Any]:
    row = multicore_point(
        int(params["m"]),
        int(params["point_index"]),
        float(params["per_core_utilization"]),
        int(params["sets_per_point"]),
        params["backend"],
        int(params["max_nodes"]),
        int(params["seed"]),
    )
    return list(row)


def _multicore_finalize(
    payloads: Mapping[str, Any], options: dict[str, Any]
) -> list[ExperimentResult]:
    result = multicore_skeleton(
        float(options["per_core_utilization"]),
        options["backend"],
        int(options["max_nodes"]),
    )
    for m in options["cores"]:
        payload = payloads.get(f"m{m}")
        if payload is not None:
            result.add_row(*payload)
    return [result]


# -- registry ------------------------------------------------------------------

CAMPAIGNS: dict[str, CampaignDefinition] = {
    "fig1": CampaignDefinition(
        name="fig1",
        description="FMS task-killing sweep, one shard per n' point",
        default_options=lambda: _fms_options("kill"),
        plan=_fms_plan,
        execute=_fms_execute,
        finalize=_fig1_finalize,
    ),
    "fig2": CampaignDefinition(
        name="fig2",
        description="FMS degradation sweep, one shard per n' point",
        default_options=lambda: _fms_options("degrade"),
        plan=_fms_plan,
        execute=_fms_execute,
        finalize=_fig2_finalize,
    ),
    "fig3": CampaignDefinition(
        name="fig3",
        description="synthetic acceptance ratios, one shard per grid point",
        default_options=_fig3_options,
        plan=_fig3_plan,
        execute=_fig3_execute,
        finalize=_fig3_finalize,
    ),
    "tables": CampaignDefinition(
        name="tables",
        description="paper tables 1-4, one shard per table",
        default_options=_tables_options,
        plan=_tables_plan,
        execute=_tables_execute,
        finalize=_tables_finalize,
    ),
    "validation": CampaignDefinition(
        name="validation",
        description="simulation validation, one shard per mechanism/point",
        default_options=_validation_options,
        plan=_validation_plan,
        execute=_validation_execute,
        finalize=_validation_finalize,
    ),
    "multicore": CampaignDefinition(
        name="multicore",
        description="FT-MP acceptance vs core count, one shard per m",
        default_options=_multicore_options,
        plan=_multicore_plan,
        execute=_multicore_execute,
        finalize=_multicore_finalize,
    ),
}


def campaign_names() -> list[str]:
    return list(CAMPAIGNS)


def get_campaign(name: str) -> CampaignDefinition:
    try:
        return CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(campaign_names())
        raise ValueError(f"unknown campaign {name!r} (known: {known})") from None


def build_options(
    name: str,
    seed: int | None = None,
    sets: int | None = None,
    panels: list[str] | None = None,
    failure_probabilities: list[float] | None = None,
    utilizations: list[float] | None = None,
) -> dict[str, Any]:
    """Merge generic CLI knobs into a campaign's default options.

    Only knobs the campaign actually understands are applied; the
    validation campaign caps ``sets`` at 50 like ``ftmc validate``.
    """
    options = get_campaign(name).default_options()
    if seed is not None and "seed" in options:
        options["seed"] = int(seed)
    if sets is not None and "sets_per_point" in options:
        capped = min(int(sets), 50) if name == "validation" else int(sets)
        options["sets_per_point"] = capped
    if name == "fig3":
        if panels is not None:
            options["panels"] = list(panels)
        if failure_probabilities is not None:
            options["failure_probabilities"] = [
                float(f) for f in failure_probabilities
            ]
        if utilizations is not None:
            options["utilizations"] = [float(u) for u in utilizations]
    return options
