"""The ``ftmc campaign-worker`` process: one executor's worker group.

A :class:`~repro.runner.executors.SubprocessExecutor` launches exactly
one of these.  The group is a tiny, single-threaded agent: it reads
``run``/``cancel``/``shutdown`` ops from stdin, forks one worker
process per ``run`` (reusing :func:`repro.runner.worker.shard_worker`
unchanged — chaos worker faults included), reaps workers, and streams
``ready``/``heartbeat``/``result`` replies to stdout using the framing
in :mod:`repro.runner.protocol`.

The group performs **no judging and no retries** — it forwards each
worker's raw pipe message and exit code and lets the supervisor apply
the same verdict logic it applies to locally forked workers.  That
keeps the two topologies byte-identical by construction.

Protocol hygiene: stdout *is* the wire, so the group re-points fd 1 at
stderr immediately and keeps a private duplicate for protocol writes —
a stray ``print`` anywhere in experiment code (workers inherit the
redirection) lands in the supervisor's stderr instead of corrupting
the message stream.

Failure behaviour: EOF on stdin, or a broken stdout pipe, means the
supervisor is gone (dead, or severing us on purpose during a chaos
kill) — the group kills every worker child and exits.  The group never
exits because a *worker* died; that is a result to report, not a group
failure.
"""

from __future__ import annotations

import os
import select
import time
from typing import Any

from repro.obs import clock
from repro.runner.executors import fork_context
from repro.runner.protocol import PROTOCOL_VERSION, decode_line, encode
from repro.runner.worker import shard_worker

__all__ = ["WorkerGroup", "run_worker_group", "HEARTBEAT_INTERVAL"]

#: Seconds between ``heartbeat`` messages while idle or busy.
HEARTBEAT_INTERVAL = 0.5

_TICK = 0.02


class _GroupTask:
    """One forked worker child plus its one-shot result pipe."""

    __slots__ = ("task_id", "process", "conn", "message")

    def __init__(self, task_id: int, process: Any, conn: Any) -> None:
        self.task_id = task_id
        self.process = process
        self.conn = conn
        self.message: str | None = None


class WorkerGroup:
    """The campaign-worker event loop (see the module docstring)."""

    def __init__(self) -> None:
        self._ctx = fork_context()
        self._tasks: dict[int, _GroupTask] = {}
        self._seq = 0
        self._in_fd: int | None = None
        self._out_fd: int | None = None

    def run(self) -> int:
        # Claim the wire: protocol writes go to a private duplicate of
        # stdout, and fd 1 itself is re-pointed at stderr so that no
        # stray print (here or in a forked worker) can corrupt framing.
        self._out_fd = os.dup(1)
        os.dup2(2, 1)
        self._in_fd = 0
        buffer = b""
        shutdown = False
        eof = False
        last_beat = clock.monotonic()
        try:
            self._send({"op": "ready", "pid": os.getpid(),
                        "version": PROTOCOL_VERSION})
            while True:
                if (shutdown or eof) and not self._tasks:
                    break
                if eof and not shutdown:
                    # The supervisor vanished (or severed us): stop work.
                    break
                if not eof:
                    readable, _, _ = select.select(
                        [self._in_fd], [], [], _TICK
                    )
                    if readable:
                        try:
                            data = os.read(self._in_fd, 65536)
                        except OSError:
                            data = b""
                        if not data:
                            eof = True
                        buffer += data
                        while b"\n" in buffer:
                            line, buffer = buffer.split(b"\n", 1)
                            op = decode_line(line)
                            if op is not None:
                                shutdown |= self._handle(op)
                else:
                    time.sleep(_TICK)
                self._reap()
                now = clock.monotonic()
                if now - last_beat >= HEARTBEAT_INTERVAL:
                    last_beat = now
                    self._seq += 1
                    self._send({"op": "heartbeat", "seq": self._seq})
        except BrokenPipeError:
            pass  # supervisor's read end is gone: fall through to cleanup
        finally:
            for task in list(self._tasks.values()):
                self._discard(task)
        return 0

    # -- wire ------------------------------------------------------------------

    def _send(self, message: dict[str, Any]) -> None:
        data = encode(message)
        fd = self._out_fd
        assert fd is not None
        while data:
            written = os.write(fd, data)
            data = data[written:]

    # -- ops -------------------------------------------------------------------

    def _handle(self, op: dict[str, Any]) -> bool:
        """Apply one supervisor op; True when it was ``shutdown``."""
        kind = op.get("op")
        if kind == "run":
            self._start(op)
        elif kind == "cancel":
            task = self._tasks.pop(op.get("task"), None)
            if task is not None:
                self._discard(task)
        elif kind == "shutdown":
            return True
        return False

    def _start(self, op: dict[str, Any]) -> None:
        task_id = op.get("task")
        if not isinstance(task_id, int):
            return
        params = op.get("params")
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=shard_worker,
            args=(
                child_conn,
                str(op.get("experiment")),
                dict(params) if isinstance(params, dict) else {},
                op.get("chaos"),
                float(op.get("delay") or 0.0),
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._tasks[task_id] = _GroupTask(task_id, process, parent_conn)

    # -- workers ---------------------------------------------------------------

    def _reap(self) -> None:
        """Forward the raw verdict material of every finished worker."""
        for task in list(self._tasks.values()):
            self._drain(task)
            if task.process.is_alive():
                continue
            self._drain(task)  # the pipe's tail, now that the worker exited
            task.process.join()
            exitcode = task.process.exitcode
            task.conn.close()
            del self._tasks[task.task_id]
            self._send(
                {
                    "op": "result",
                    "task": task.task_id,
                    "message": task.message,
                    "exitcode": exitcode,
                }
            )

    @staticmethod
    def _drain(task: _GroupTask) -> None:
        try:
            while task.conn.poll(0):
                task.message = task.conn.recv()
        except (EOFError, OSError):
            pass

    def _discard(self, task: _GroupTask) -> None:
        """Kill a worker without reporting (cancel / teardown path)."""
        process = task.process
        if process.is_alive():
            process.terminate()
            process.join(0.5)
            if process.is_alive():
                process.kill()
                process.join()
        task.conn.close()
        self._tasks.pop(task.task_id, None)


def run_worker_group() -> int:
    """CLI entry point for the hidden ``campaign-worker`` verb."""
    return WorkerGroup().run()
