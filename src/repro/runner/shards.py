"""Shard and outcome value objects for the campaign runner.

A *shard* is the runner's unit of fault tolerance: a deterministic,
seeded slice of an experiment (one ``n'`` sweep point, one Fig. 3 grid
point, one table) that can be executed in an isolated worker process,
retried after a crash, and checkpointed independently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["ShardSpec", "ShardOutcome", "ShardRun", "CampaignReport",
           "backoff_rng"]

#: Outcome states for :class:`ShardOutcome.status`.
COMPLETED = "completed"
FAILED = "failed"


@dataclass(frozen=True)
class ShardSpec:
    """One deterministic slice of an experiment.

    ``params`` must be JSON-serialisable: they cross the process
    boundary to the worker and are recorded in the checkpoint manifest.
    ``seed`` is the shard's recorded random seed — re-running the shard
    with the same params/seed reproduces its payload bit-identically.
    """

    id: str
    index: int
    seed: int
    params: Mapping[str, Any]


@dataclass
class ShardOutcome:
    """What happened to one shard over the whole campaign."""

    spec: ShardSpec
    status: str = FAILED
    attempts: int = 0
    payload: Any = None
    #: Human-readable reason for each failed attempt, in order.
    errors: list[str] = field(default_factory=list)
    #: True when the shard had to be re-executed after its checkpoint
    #: record was lost to a torn write (chaos truncation / crash).
    recovered: bool = False
    #: True when the payload was restored from the checkpoint (--resume).
    resumed: bool = False
    #: Monotonic wall-clock seconds spent on this shard across all
    #: attempts (``None`` for resumed shards, which never ran here).
    duration_s: float | None = None

    @property
    def completed(self) -> bool:
        return self.status == COMPLETED

    @property
    def retried(self) -> bool:
        """Whether fault tolerance did any work for this shard."""
        return self.attempts > 1 or self.recovered


def backoff_rng(spec: ShardSpec) -> random.Random:
    """The shard's private backoff-jitter stream.

    Each shard draws its retry jitter from its own generator, seeded
    purely by the shard's identity — never from a stream shared across
    shards.  A shared stream would make every delay schedule depend on
    the order in which *other* shards happened to fail, which under a
    concurrent pool is completion order: non-deterministic.  With a
    per-shard stream the schedule for shard *i* is a pure function of
    the plan, whatever ``--jobs`` is.
    """
    return random.Random(spec.seed * 1_000_003 + spec.index)


@dataclass
class ShardRun:
    """Scheduler-side execution state for one shard (the state machine).

    The supervisor's pool loop keeps up to ``--jobs`` of these *live* at
    once.  A run is **waiting** until its first attempt starts, then
    alternates between **running** (an attempt handle is attached,
    watched against ``deadline``) and **backing off** (``handle is
    None`` and the next attempt may not start before ``ready_at``, a
    monotonic timestamp — the non-blocking replacement for sleeping the
    whole supervisor).  A live run holds its pool ``slot`` across
    retries, so ``--jobs 1`` reproduces the serial scheduler's exact
    ordering.  When the run's executor is lost mid-attempt, the
    supervisor reclaims the lease: the handle is detached, the slot is
    released, and the run goes back to waiting for a surviving
    executor's slot.
    """

    outcome: ShardOutcome
    #: Per-shard jitter stream (see :func:`backoff_rng`).
    rng: random.Random
    #: Pool slot this shard occupies while live (``None`` before start).
    slot: int | None = None
    #: The in-flight attempt (:class:`repro.runner.executors.AttemptHandle`)
    #: and the executor hosting it, while running.
    handle: Any = None
    executor: Any = None
    #: Monotonic watchdog deadline for the running attempt.
    deadline: float = 0.0
    #: Monotonic instant before which the next attempt must not start.
    ready_at: float = 0.0
    #: Monotonic start of the first attempt (feeds ``duration_s``).
    started_monotonic: float | None = None
    #: Open obs span handles (``None`` when untraced).
    span: Any = None
    attempt_span: Any = None

    @property
    def spec(self) -> ShardSpec:
        return self.outcome.spec

    @property
    def running(self) -> bool:
        """Whether a worker attempt is currently attached."""
        return self.handle is not None

    @property
    def started(self) -> bool:
        return self.started_monotonic is not None


@dataclass
class CampaignReport:
    """Coverage accounting for one campaign run (the degradation record).

    A campaign never crashes because a shard died: it completes with
    this report, which states exactly what was and was not computed —
    the harness-level analogue of EDF-VD's degraded-but-explicit service
    guarantees.
    """

    experiment: str
    output_dir: str
    checkpoint_path: str
    outcomes: list[ShardOutcome] = field(default_factory=list)
    result_files: list[str] = field(default_factory=list)
    coverage_path: str | None = None
    chaos_seed: int | None = None
    #: Unparseable checkpoint lines skipped by the tolerant loader.
    corrupt_checkpoint_lines: int = 0
    #: Well-formed checkpoint records of an unrecognised kind (written
    #: by a newer ftmc?) skipped with a warning by the tolerant loader.
    unknown_checkpoint_records: int = 0
    #: In-flight attempts requeued after their executor was lost
    #: (timing-dependent; reported, but outside the coverage bytes).
    reclaimed_leases: int = 0
    #: Leases found without a completed shard record on ``--resume``.
    stale_leases: int = 0
    #: Final counters of the campaign's shared verdict cache (multi-worker
    #: runs only; timing/topology-dependent, so reported here and never
    #: written into the coverage or result bytes).
    shared_cache: dict[str, int] | None = None

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> list[ShardOutcome]:
        return [o for o in self.outcomes if o.completed]

    @property
    def failed(self) -> list[ShardOutcome]:
        return [o for o in self.outcomes if not o.completed]

    @property
    def retried(self) -> list[ShardOutcome]:
        return [o for o in self.outcomes if o.retried]

    @property
    def resumed(self) -> list[ShardOutcome]:
        return [o for o in self.outcomes if o.resumed]

    @property
    def exit_code(self) -> int:
        """0 when every shard completed; 3 for a degraded campaign."""
        return 0 if not self.failed else 3

    def coverage(self) -> dict[str, Any]:
        """JSON-serialisable coverage summary (written next to results)."""
        return {
            "experiment": self.experiment,
            "shards": self.total,
            "completed": len(self.completed),
            "failed": len(self.failed),
            "resumed": len(self.resumed),
            "chaos_seed": self.chaos_seed,
            "corrupt_checkpoint_lines": self.corrupt_checkpoint_lines,
            "unknown_checkpoint_records": self.unknown_checkpoint_records,
            "executed_seconds": round(
                sum(o.duration_s for o in self.outcomes if o.duration_s), 6
            ),
            "retried_shards": [
                {
                    "id": o.spec.id,
                    "attempts": o.attempts,
                    "recovered": o.recovered,
                    "duration_s": o.duration_s,
                    "errors": list(o.errors),
                }
                for o in self.retried
            ],
            "failed_shards": [
                {
                    "id": o.spec.id,
                    "attempts": o.attempts,
                    "duration_s": o.duration_s,
                    "errors": list(o.errors),
                }
                for o in self.failed
            ],
        }

    def render(self) -> str:
        """Terminal summary of the campaign."""
        lines = [
            f"== campaign {self.experiment}: "
            f"{len(self.completed)}/{self.total} shards completed =="
        ]
        if self.resumed:
            lines.append(f"resumed from checkpoint: {len(self.resumed)} shards")
        if self.corrupt_checkpoint_lines:
            lines.append(
                f"checkpoint recovery: skipped "
                f"{self.corrupt_checkpoint_lines} torn line(s)"
            )
        if self.unknown_checkpoint_records:
            lines.append(
                f"checkpoint recovery: skipped "
                f"{self.unknown_checkpoint_records} unrecognised record(s) "
                "(written by a newer ftmc?)"
            )
        if self.reclaimed_leases:
            lines.append(
                f"executor fault tolerance: reclaimed "
                f"{self.reclaimed_leases} orphaned lease(s) from lost "
                "executor(s)"
            )
        if self.stale_leases:
            lines.append(
                f"resume: {self.stale_leases} stale lease(s) from the "
                "previous run were re-executed"
            )
        if self.shared_cache is not None:
            lines.append(
                f"shared verdict cache: {self.shared_cache['hits']} hit(s), "
                f"{self.shared_cache['stores']} store(s) across "
                f"{self.shared_cache['slots']} slot(s)"
            )
        for outcome in self.retried:
            reasons = "; ".join(outcome.errors) or "checkpoint record lost"
            lines.append(
                f"retried: {outcome.spec.id} "
                f"({outcome.attempts} attempt(s)"
                + (", recovered from torn checkpoint" if outcome.recovered else "")
                + f") — {reasons}"
            )
        for outcome in self.failed:
            reasons = "; ".join(outcome.errors) or "unknown"
            lines.append(
                f"FAILED: {outcome.spec.id} after {outcome.attempts} "
                f"attempt(s) — {reasons}"
            )
        for path in self.result_files:
            lines.append(f"wrote {path}")
        if self.coverage_path:
            lines.append(f"coverage report: {self.coverage_path}")
        if self.failed:
            lines.append(
                "campaign DEGRADED: partial results above cover only the "
                "completed shards (exit code 3)"
            )
        return "\n".join(lines)
