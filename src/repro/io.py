"""Task-set serialisation: JSON load/save for systems and results.

Lets users describe their dual-criticality system in a plain JSON file
and run the toolchain on it (``ftmc analyze my-system.json``).  Format:

.. code-block:: json

    {
      "name": "my-system",
      "criticality": {"hi": "B", "lo": "C"},
      "tasks": [
        {"name": "nav", "period": 60, "deadline": 60, "wcet": 5,
         "criticality": "HI", "failure_probability": 1e-5},
        {"name": "disp", "period": 40, "wcet": 7,
         "criticality": "LO", "failure_probability": 1e-5}
      ]
    }

``deadline`` defaults to ``period`` (implicit deadlines).  The
``criticality`` header binds the symbolic HI/LO roles to DO-178B levels
and may be omitted for task sets analysed without safety ceilings.

This module also owns the repository's *crash-safe write primitives*
(:func:`atomic_write_text`, :func:`atomic_write_json`,
:func:`append_jsonl`).  Every result/JSON/CSV emitted by the toolchain
must go through them — a fault-tolerance paper's artifacts should not be
corruptible by the very crashes it studies.  ``ftmc selfcheck`` enforces
this (rule FTMCC05).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

from repro.model.criticality import (
    CriticalityRole,
    DO178BLevel,
    DualCriticalitySpec,
)
from repro.model.task import Task, TaskSet
from repro.multilevel.model import MLTask, MLTaskSet

__all__ = [
    "atomic_write_text",
    "atomic_write_json",
    "append_jsonl",
    "JsonlAppender",
    "taskset_to_dict",
    "taskset_from_dict",
    "save_taskset",
    "load_taskset",
    "multilevel_to_dict",
    "multilevel_from_dict",
    "save_multilevel",
    "load_multilevel",
]


# -- crash-safe write primitives -----------------------------------------------


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry so a rename survives power loss (best effort)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(dir_fd)


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The content goes to a temporary file *in the same directory* (so the
    final rename cannot cross filesystems), is fsynced, and then moved
    over ``path`` with :func:`os.replace`.  Readers therefore observe
    either the complete old file or the complete new file — never a
    truncated mixture, no matter when the process is killed.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def atomic_write_json(path: str, data: Any, indent: int = 2) -> None:
    """Serialise ``data`` as JSON and write it atomically to ``path``."""
    atomic_write_text(path, json.dumps(data, indent=indent) + "\n")


def append_jsonl(path: str, record: Any) -> None:
    """Append one JSON record as a line to ``path``, fsynced.

    Appends are not atomic (only :func:`os.replace` is), but each record
    is a single self-contained line followed by a flush + fsync, so a
    crash can at worst leave one torn *trailing* line — which tolerant
    readers (e.g. the campaign checkpoint loader) skip.

    A previous crash can leave the file *without* a trailing newline;
    appending straight after it would glue this record onto the torn
    fragment and lose both lines.  The appender therefore starts a fresh
    line when the file does not end in a newline — the fragment stays a
    self-contained corrupt line for the loader to skip-and-count, and
    the new record survives.
    """
    line = _jsonl_line(record)
    with open(path, "a+b") as handle:
        handle.seek(0, os.SEEK_END)
        if handle.tell() > 0:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")
        handle.write((line + "\n").encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())


def _jsonl_line(record: Any) -> str:
    line = json.dumps(record, separators=(",", ":"))
    if "\n" in line:  # json never emits raw newlines, but fail loudly
        raise ValueError("JSONL record serialised with an embedded newline")
    return line


class JsonlAppender:
    """Streaming JSONL appender for high-rate event streams (obs traces).

    :func:`append_jsonl` pays one ``open`` + ``fsync`` per record — right
    for checkpoints, far too slow for a trace emitting thousands of span
    records.  This appender keeps the handle open, flushes each record to
    the OS (so a crash tears at most the trailing line, which tolerant
    loaders skip), and fsyncs once on :meth:`close`.

    :meth:`abandon` exists for forked children: a campaign worker that
    inherits the supervisor's open trace stream must neither write to it
    nor flush/close it — abandoning simply drops the handle reference.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "a")

    def write(self, record: Any) -> None:
        """Append one record as a flushed JSONL line."""
        if self._handle is None:
            raise ValueError("appender is closed")
        self._handle.write(_jsonl_line(record) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush, fsync and close the stream (idempotent)."""
        if self._handle is None:
            return
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        finally:
            self._handle.close()
            self._handle = None

    def abandon(self) -> None:
        """Drop the handle without flushing or closing (post-fork child)."""
        self._handle = None

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def taskset_to_dict(taskset: TaskSet) -> dict[str, Any]:
    """Serialise a task set (and its HI/LO spec) to plain data."""
    data: dict[str, Any] = {
        "name": taskset.name,
        "tasks": [
            {
                "name": t.name,
                "period": t.period,
                "deadline": t.deadline,
                "wcet": t.wcet,
                "criticality": t.criticality.name,
                "failure_probability": t.failure_probability,
            }
            for t in taskset
        ],
    }
    if taskset.spec is not None:
        data["criticality"] = {
            "hi": taskset.spec.hi_level.name,
            "lo": taskset.spec.lo_level.name,
        }
    return data


def taskset_from_dict(data: dict[str, Any]) -> TaskSet:
    """Deserialise a task set; validates through the model constructors."""
    if "tasks" not in data or not isinstance(data["tasks"], list):
        raise ValueError("task-set document needs a 'tasks' list")
    tasks = []
    for i, raw in enumerate(data["tasks"]):
        try:
            role = CriticalityRole[str(raw["criticality"]).upper()]
        except KeyError:
            raise ValueError(
                f"task #{i}: criticality must be 'HI' or 'LO', "
                f"got {raw.get('criticality')!r}"
            ) from None
        try:
            period = float(raw["period"])
            wcet = float(raw["wcet"])
        except KeyError as missing:
            raise ValueError(f"task #{i}: missing field {missing}") from None
        tasks.append(
            Task(
                name=str(raw.get("name", f"tau{i + 1}")),
                period=period,
                deadline=float(raw.get("deadline", period)),
                wcet=wcet,
                criticality=role,
                failure_probability=float(raw.get("failure_probability", 0.0)),
            )
        )
    spec = None
    if "criticality" in data:
        header = data["criticality"]
        spec = DualCriticalitySpec.from_names(header["hi"], header["lo"])
    return TaskSet(tasks, spec=spec, name=str(data.get("name", "taskset")))


def save_taskset(taskset: TaskSet, path: str) -> None:
    """Write a task set to a JSON file (atomically)."""
    atomic_write_json(path, taskset_to_dict(taskset))


def load_taskset(path: str) -> TaskSet:
    """Read a task set from a JSON file."""
    with open(path) as handle:
        return taskset_from_dict(json.load(handle))


# -- multi-level documents -----------------------------------------------------
#
# Same shape as the dual format but each task's "level" is a DO-178B
# letter (A-E) and there is no criticality header:
#
#   {"name": "...", "tasks": [
#       {"name": "x", "period": 50, "wcet": 4, "level": "A",
#        "failure_probability": 1e-6}, ...]}


def multilevel_to_dict(taskset: MLTaskSet) -> dict[str, Any]:
    """Serialise a multi-level task set to plain data."""
    return {
        "name": taskset.name,
        "tasks": [
            {
                "name": t.name,
                "period": t.period,
                "deadline": t.deadline,
                "wcet": t.wcet,
                "level": t.level.name,
                "failure_probability": t.failure_probability,
            }
            for t in taskset
        ],
    }


def multilevel_from_dict(data: dict[str, Any]) -> MLTaskSet:
    """Deserialise a multi-level task set."""
    if "tasks" not in data or not isinstance(data["tasks"], list):
        raise ValueError("task-set document needs a 'tasks' list")
    tasks = []
    for i, raw in enumerate(data["tasks"]):
        try:
            level = DO178BLevel.from_name(str(raw["level"]))
        except KeyError:
            raise ValueError(f"task #{i}: missing field 'level'") from None
        try:
            period = float(raw["period"])
            wcet = float(raw["wcet"])
        except KeyError as missing:
            raise ValueError(f"task #{i}: missing field {missing}") from None
        tasks.append(
            MLTask(
                name=str(raw.get("name", f"tau{i + 1}")),
                period=period,
                deadline=float(raw.get("deadline", period)),
                wcet=wcet,
                level=level,
                failure_probability=float(raw.get("failure_probability", 0.0)),
            )
        )
    return MLTaskSet(tasks, name=str(data.get("name", "ml-taskset")))


def save_multilevel(taskset: MLTaskSet, path: str) -> None:
    """Write a multi-level task set to a JSON file (atomically)."""
    atomic_write_json(path, multilevel_to_dict(taskset))


def load_multilevel(path: str) -> MLTaskSet:
    """Read a multi-level task set from a JSON file."""
    with open(path) as handle:
        return multilevel_from_dict(json.load(handle))
