"""Monte-Carlo estimation of PFH with confidence intervals.

The analytical lemmas give deterministic upper bounds; this module
estimates the *actual* failure-per-hour rates by repeated randomized
simulation, with binomial/Poisson confidence intervals, so bounds can be
checked for soundness (estimate below bound) and tightness (ratio of
bound to estimate).

Failure events are rare at realistic probabilities (1e-5 per execution),
so estimation supports the same ``probability_scale`` inflation as the
fault injector: simulate at a scaled probability where events are
observable, then compare against the bound evaluated at the scaled
probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.tolerance import PROB_EPS
from repro.core.ftmc import FTSResult
from repro.model.criticality import CriticalityRole
from repro.model.task import HOUR_MS, TaskSet
from repro.sim.runtime import simulate_ft_result

__all__ = ["PFHEstimate", "estimate_pfh"]

#: Two-sided normal quantile for the default 95% interval.
_Z95: float = 1.959963984540054


@dataclass(frozen=True)
class PFHEstimate:
    """A Monte-Carlo PFH estimate for one criticality level."""

    role: CriticalityRole
    #: Total simulated hours across all runs.
    hours: float
    #: Total observed temporal failures (fault-exhausted + missed + killed).
    failures: int
    #: Total rounds released (for context).
    released: int
    runs: int
    #: Base seed of the estimation (run ``k`` simulates with ``seed + k``);
    #: together with ``probability_scale`` this makes the estimate fully
    #: reproducible from its result record alone.
    seed: int = 0
    #: Fault-probability inflation the runs were simulated at.
    probability_scale: float = 1.0

    @property
    def mean(self) -> float:
        """Point estimate: failures per hour."""
        return self.failures / self.hours if self.hours > 0 else 0.0

    def confidence_interval(self, z: float = _Z95) -> tuple[float, float]:
        """Normal-approximation CI for a Poisson rate.

        ``failures`` is treated as Poisson over ``hours``; the interval is
        ``(failures + z^2/2 +/- z * sqrt(failures + z^2/4)) / hours``
        (the score interval, well-behaved at zero counts).
        """
        if self.hours <= 0:
            return (0.0, 0.0)
        centre = self.failures + z * z / 2.0
        spread = z * math.sqrt(self.failures + z * z / 4.0)
        low = max(centre - spread, 0.0) / self.hours
        high = (centre + spread) / self.hours
        return (low, high)

    def consistent_with_bound(self, bound: float, z: float = _Z95) -> bool:
        """Whether the estimate is statistically below ``bound``.

        True when the lower end of the confidence interval does not exceed
        the bound — i.e. the data does not refute the bound's soundness.
        """
        low, _ = self.confidence_interval(z)
        return low <= bound + PROB_EPS


def estimate_pfh(
    taskset: TaskSet,
    result: FTSResult,
    role: CriticalityRole,
    hours_per_run: float = 1.0,
    runs: int = 10,
    probability_scale: float = 1.0,
    seed: int = 0,
) -> PFHEstimate:
    """Estimate the PFH of ``role`` under a successful FT-S configuration.

    Executes ``runs`` independent seeded simulations of ``hours_per_run``
    hours each and pools the observed temporal failures.  ``seed`` is
    threaded explicitly into each run's fault injector (run ``k`` uses
    ``seed + k``) and recorded in the estimate, so any
    :class:`PFHEstimate` can be reproduced bit-identically from its own
    record.
    """
    if runs < 1:
        raise ValueError(f"need at least one run, got {runs}")
    if hours_per_run <= 0:
        raise ValueError(f"hours per run must be positive, got {hours_per_run}")
    failures = 0
    released = 0
    for run in range(runs):
        metrics = simulate_ft_result(
            taskset,
            result,
            horizon=hours_per_run * HOUR_MS,
            seed=seed + run,
            probability_scale=probability_scale,
        )
        failures += metrics.temporal_failures(role)
        released += metrics.released(role)
    return PFHEstimate(
        role=role,
        hours=hours_per_run * runs,
        failures=failures,
        released=released,
        runs=runs,
        seed=seed,
        probability_scale=probability_scale,
    )
