"""Transient-fault injection for the simulator.

The paper's fault model (Section 2.1): each execution of a job fails with
a fixed probability (the per-job failure probability ``f_i``) due to
transient hardware errors, detected by sanity checks at completion.

:class:`BernoulliFaultInjector` draws an independent Bernoulli per
execution from a seeded :class:`numpy.random.Generator` so runs are
reproducible.  :class:`ScriptedFaultInjector` replays a predetermined
fault pattern and is used by the deterministic engine tests.
"""

from __future__ import annotations

import abc
from collections import defaultdict, deque
from typing import Iterable, Mapping

import numpy as np

from repro.model.task import Task

__all__ = [
    "FaultInjector",
    "BernoulliFaultInjector",
    "BurstyFaultInjector",
    "NoFaultInjector",
    "ScriptedFaultInjector",
]


class FaultInjector(abc.ABC):
    """Decides, at each execution completion, whether a fault occurred."""

    @abc.abstractmethod
    def execution_faulty(self, task: Task, now: float) -> bool:
        """``True`` when the execution finishing at ``now`` is faulty."""


class NoFaultInjector(FaultInjector):
    """Fault-free hardware: every execution passes its sanity check."""

    def execution_faulty(self, task: Task, now: float) -> bool:
        return False


class BernoulliFaultInjector(FaultInjector):
    """Independent per-execution faults with the task's probability ``f_i``.

    ``probability_scale`` inflates every ``f_i`` by a constant factor —
    useful to make rare failures observable in affordable simulation
    horizons while keeping relative task failure rates intact (the
    empirical-PFH validation uses this).
    """

    def __init__(self, seed: int | np.random.Generator = 0,
                 probability_scale: float = 1.0) -> None:
        if probability_scale < 0:
            raise ValueError(f"scale must be non-negative, got {probability_scale}")
        self._rng = (
            seed if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._scale = probability_scale

    def execution_faulty(self, task: Task, now: float) -> bool:
        p = min(task.failure_probability * self._scale, 1.0)
        if p <= 0.0:
            return False
        return bool(self._rng.random() < p)


class BurstyFaultInjector(FaultInjector):
    """Correlated faults via a two-state (quiet/burst) Markov process.

    The paper's analysis assumes *independent* per-execution faults, so a
    round of ``n`` executions fails with ``f^n``.  Real transient-fault
    sources can be bursty (e.g. a radiation event spanning several
    milliseconds), which positively correlates consecutive executions and
    can push the per-round failure probability far above ``f^n`` — a
    threat to the validity of eq. (2) that this injector makes testable.

    The injector holds a global hardware state toggling between QUIET
    (fault probability ~0) and BURST (probability ``burst_probability``)
    at each execution completion, with switching probabilities chosen so
    the *average* per-execution fault rate equals ``average_probability``:

        stationary burst share  p_B = average / burst_probability
        P(quiet->burst) = p_B * switchiness
        P(burst->quiet) = (1 - p_B) * switchiness

    Smaller ``switchiness`` means longer bursts (stronger correlation)
    at the same average rate.
    """

    def __init__(
        self,
        average_probability: float,
        burst_probability: float = 0.9,
        switchiness: float = 0.05,
        seed: int | np.random.Generator = 0,
    ) -> None:
        if not 0.0 <= average_probability < 1.0:
            raise ValueError(
                f"average probability must be in [0, 1), got "
                f"{average_probability}"
            )
        if not average_probability <= burst_probability <= 1.0:
            raise ValueError(
                "burst probability must lie in [average, 1], got "
                f"{burst_probability}"
            )
        if not 0.0 < switchiness <= 1.0:
            raise ValueError(
                f"switchiness must be in (0, 1], got {switchiness}"
            )
        self._rng = (
            seed if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._burst_probability = burst_probability
        burst_share = (
            average_probability / burst_probability
            if burst_probability > 0
            else 0.0
        )
        self._to_burst = burst_share * switchiness
        self._to_quiet = (1.0 - burst_share) * switchiness
        self._in_burst = bool(self._rng.random() < burst_share)

    def execution_faulty(self, task: Task, now: float) -> bool:
        p = self._burst_probability if self._in_burst else 0.0
        faulty = bool(self._rng.random() < p)
        # Advance the hardware state.
        if self._in_burst:
            if self._rng.random() < self._to_quiet:
                self._in_burst = False
        else:
            if self._rng.random() < self._to_burst:
                self._in_burst = True
        return faulty


class ScriptedFaultInjector(FaultInjector):
    """Replays a scripted per-task fault sequence (for deterministic tests).

    ``script`` maps task names to an iterable of booleans consumed one per
    execution completion; exhausted scripts report no further faults.
    """

    def __init__(self, script: Mapping[str, Iterable[bool]]) -> None:
        self._queues: dict[str, deque[bool]] = defaultdict(deque)
        for name, faults in script.items():
            self._queues[name] = deque(bool(x) for x in faults)

    def execution_faulty(self, task: Task, now: float) -> bool:
        queue = self._queues.get(task.name)
        if queue:
            return queue.popleft()
        return False
