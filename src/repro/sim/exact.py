"""Exact schedulability checking by hyperperiod simulation.

For *synchronous periodic* implicit- or constrained-deadline workloads
under preemptive EDF, simulating one hyperperiod from the synchronous
release with every job taking its WCET is a necessary and sufficient
schedulability test: the synchronous arrival sequence is the worst case,
and the schedule repeats after the hyperperiod (when ``U <= 1``).

This gives the repository an *oracle* that is independent of every
analytical test: the property suite checks that the EDF utilization
bound, the processor-demand criterion and QPA all agree with brute-force
hyperperiod simulation on integer-period workloads.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analysis.edf import Workload
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import FaultToleranceConfig, ReexecutionProfile
from repro.model.task import Task, TaskSet
from repro.sim.engine import Simulator
from repro.sim.policies import EDFPolicy

__all__ = ["hyperperiod_of", "edf_schedulable_by_simulation"]


def hyperperiod_of(workload: Sequence[Workload]) -> float:
    """LCM of the (integer) periods; raises for non-integer periods."""
    lcm = 1
    for w in workload:
        period = round(w.period)
        if not math.isclose(period, w.period, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(
                f"hyperperiod undefined for non-integer period {w.period}"
            )
        lcm = lcm * period // math.gcd(lcm, period)
    return float(lcm)


def edf_schedulable_by_simulation(workload: Sequence[Workload]) -> bool:
    """Exact EDF test for synchronous periodic workloads via simulation.

    Simulates one hyperperiod (plus the largest deadline, so jobs released
    near the end still meet or miss inside the window) from the
    synchronous release, with every job consuming its full WCET.  Exact
    for periodic tasks with ``D_i <= T_i``; for ``D_i > T_i`` the window
    is sufficient-only (a warning-free conservative answer).
    """
    items = [w for w in workload if w.wcet > 0]
    if not items:
        return True
    if sum(w.utilization for w in items) > 1.0 + 1e-12:
        return False
    horizon = hyperperiod_of(items) + max(w.deadline for w in items)
    tasks = [
        Task(
            name=f"w{i}",
            period=w.period,
            deadline=w.deadline,
            wcet=w.wcet,
            criticality=CriticalityRole.HI,
            failure_probability=0.0,
        )
        for i, w in enumerate(items)
    ]
    # The engine needs both roles only for adaptation, which is off here.
    taskset = TaskSet(tasks, spec=DualCriticalitySpec.from_names("B", "D"))
    config = FaultToleranceConfig(
        reexecution=ReexecutionProfile.constant(tasks, 1)
    )
    metrics = Simulator(taskset, EDFPolicy(), config).run(horizon)
    return metrics.deadline_misses() == 0
