"""Simulation-based validation of accepted FT-S configurations.

Analytical acceptance (Theorem 4.1) guarantees HI deadlines under the
model's assumptions; this module stress-tests an accepted configuration
empirically across many randomized fault patterns and arrival jitters,
reporting any HI-criticality deadline miss.  A miss would indicate a bug
in the toolchain (or a violated model assumption), never expected
behaviour — the validator is the repository's continuous soundness probe
and is exercised by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ftmc import FTSResult
from repro.model.criticality import CriticalityRole
from repro.model.task import TaskSet
from repro.sim.engine import SporadicArrivals
from repro.sim.fault_injection import BernoulliFaultInjector
from repro.sim.runtime import build_simulator

__all__ = ["ValidationReport", "validate_by_simulation"]


@dataclass
class ValidationReport:
    """Aggregated outcome of a multi-run validation campaign."""

    runs: int
    horizon: float
    probability_scale: float
    hi_misses: int = 0
    lo_misses: int = 0
    mode_switches: int = 0
    hi_jobs: int = 0
    failing_seeds: list[int] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """No HI-criticality deadline miss across any run."""
        return self.hi_misses == 0

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"{verdict}: {self.runs} runs x {self.horizon:g} ms, "
            f"faults x{self.probability_scale:g}",
            f"HI jobs {self.hi_jobs}, HI misses {self.hi_misses}, "
            f"LO misses {self.lo_misses}, "
            f"mode switches in {self.mode_switches}/{self.runs} runs",
        ]
        if self.failing_seeds:
            lines.append(f"failing seeds: {self.failing_seeds}")
        return "\n".join(lines)


def validate_by_simulation(
    taskset: TaskSet,
    result: FTSResult,
    runs: int = 10,
    horizon: float = 600_000.0,
    probability_scale: float = 1000.0,
    jitter_fraction: float = 0.2,
    seed: int = 0,
) -> ValidationReport:
    """Stress an accepted FT-S configuration with randomized runs.

    Each run uses an independent fault seed and sporadic arrival jitter.
    Half the runs use worst-case periodic arrivals (``jitter = 0``) since
    the synchronous pattern is the analytical critical instant.
    """
    if not result.success:
        raise ValueError("can only validate successful FT-S results")
    if runs < 1:
        raise ValueError(f"need at least one run, got {runs}")
    report = ValidationReport(
        runs=runs, horizon=horizon, probability_scale=probability_scale
    )
    for run in range(runs):
        run_seed = seed + run
        arrivals = (
            None  # periodic / critical-instant
            if run % 2 == 0
            else SporadicArrivals(run_seed, jitter_fraction)
        )
        simulator = build_simulator(
            taskset,
            result,
            fault_injector=BernoulliFaultInjector(run_seed, probability_scale),
            arrivals=arrivals,
        )
        metrics = simulator.run(horizon)
        hi_misses = metrics.deadline_misses(CriticalityRole.HI)
        report.hi_misses += hi_misses
        report.lo_misses += metrics.deadline_misses(CriticalityRole.LO)
        report.hi_jobs += metrics.released(CriticalityRole.HI)
        report.mode_switches += int(metrics.hi_mode_entered)
        if hi_misses:
            report.failing_seeds.append(run_seed)
    return report
