"""Discrete-event uniprocessor simulator with fault injection.

The empirical substrate of the reproduction: a preemptive event-driven
simulator for dual-criticality sporadic task sets with task re-execution,
mode switching, LO-task killing and service degradation.
"""

from repro.sim.engine import (
    ArrivalModel,
    PeriodicArrivals,
    Simulator,
    SporadicArrivals,
)
from repro.sim.exact import edf_schedulable_by_simulation, hyperperiod_of
from repro.sim.fault_injection import (
    BernoulliFaultInjector,
    BurstyFaultInjector,
    FaultInjector,
    NoFaultInjector,
    ScriptedFaultInjector,
)
from repro.sim.jobs import Job, JobOutcome
from repro.sim.metrics import SimulationMetrics, TaskCounters
from repro.sim.policies import (
    EDFPolicy,
    EDFVDPolicy,
    FixedPriorityPolicy,
    SchedulingPolicy,
)
from repro.sim.execution_time import FullWCET, UniformFraction
from repro.sim.montecarlo import PFHEstimate, estimate_pfh
from repro.sim.runtime import build_simulator, simulate_ft_result
from repro.sim.trace import Segment, TraceEvent, TraceEventKind, TraceRecorder
from repro.sim.validate import ValidationReport, validate_by_simulation

__all__ = [
    "ArrivalModel",
    "PeriodicArrivals",
    "Simulator",
    "SporadicArrivals",
    "BernoulliFaultInjector",
    "BurstyFaultInjector",
    "edf_schedulable_by_simulation",
    "hyperperiod_of",
    "FaultInjector",
    "NoFaultInjector",
    "ScriptedFaultInjector",
    "Job",
    "JobOutcome",
    "SimulationMetrics",
    "TaskCounters",
    "EDFPolicy",
    "EDFVDPolicy",
    "FixedPriorityPolicy",
    "SchedulingPolicy",
    "build_simulator",
    "simulate_ft_result",
    "PFHEstimate",
    "estimate_pfh",
    "FullWCET",
    "UniformFraction",
    "Segment",
    "TraceEvent",
    "TraceEventKind",
    "TraceRecorder",
    "ValidationReport",
    "validate_by_simulation",
]
