"""Metrics collected by one simulation run."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.model.criticality import CriticalityRole
from repro.model.task import HOUR_MS, TaskSet
from repro.sim.jobs import Job, JobOutcome

__all__ = ["TaskCounters", "SimulationMetrics"]


@dataclass
class TaskCounters:
    """Per-task tallies accumulated over a run."""

    released: int = 0
    success: int = 0
    fault_exhausted: int = 0
    deadline_miss: int = 0
    killed: int = 0
    unfinished: int = 0
    executions: int = 0
    faults_injected: int = 0
    #: Response-time statistics over jobs that ran to a finish time.
    max_response: float = 0.0
    response_sum: float = 0.0
    responses: int = 0

    @property
    def temporal_failures(self) -> int:
        """Rounds that did not successfully finish by their deadline."""
        return self.fault_exhausted + self.deadline_miss + self.killed

    @property
    def mean_response(self) -> float:
        """Average observed response time (0 when nothing finished)."""
        return self.response_sum / self.responses if self.responses else 0.0

    def record(self, job: Job) -> None:
        if job.outcome is JobOutcome.SUCCESS:
            self.success += 1
        elif job.outcome is JobOutcome.FAULT_EXHAUSTED:
            self.fault_exhausted += 1
        elif job.outcome is JobOutcome.DEADLINE_MISS:
            self.deadline_miss += 1
        elif job.outcome is JobOutcome.KILLED:
            self.killed += 1
        else:
            self.unfinished += 1
        if job.finish_time is not None and job.outcome in (
            JobOutcome.SUCCESS,
            JobOutcome.DEADLINE_MISS,
            JobOutcome.FAULT_EXHAUSTED,
        ):
            response = job.finish_time - job.release
            self.max_response = max(self.max_response, response)
            self.response_sum += response
            self.responses += 1


@dataclass
class SimulationMetrics:
    """Aggregated outcome of one simulation run.

    The empirical PFH accessors mirror the paper's metric: the average
    per-hour rate of rounds of a criticality level that fail in the
    temporal domain (Section 2.1).
    """

    taskset: TaskSet
    horizon: float
    per_task: dict[str, TaskCounters] = field(default_factory=dict)
    mode_switch_time: float | None = None
    busy_time: float = 0.0
    #: Portion of ``busy_time`` spent on dispatch/context-switch overhead.
    overhead_time: float = 0.0
    preemptions: int = 0

    def counters(self, task_name: str) -> TaskCounters:
        return self.per_task.setdefault(task_name, TaskCounters())

    @property
    def hours(self) -> float:
        return self.horizon / HOUR_MS

    @property
    def hi_mode_entered(self) -> bool:
        return self.mode_switch_time is not None

    @property
    def utilization_observed(self) -> float:
        """Fraction of the horizon the processor was busy."""
        return self.busy_time / self.horizon if self.horizon > 0 else 0.0

    def _sum(self, role: CriticalityRole | None, attr: str) -> int:
        names = (
            {t.name for t in self.taskset.by_criticality(role)}
            if role is not None
            else {t.name for t in self.taskset}
        )
        return sum(
            getattr(c, attr) for name, c in self.per_task.items() if name in names
        )

    def released(self, role: CriticalityRole | None = None) -> int:
        return self._sum(role, "released")

    def successes(self, role: CriticalityRole | None = None) -> int:
        return self._sum(role, "success")

    def deadline_misses(self, role: CriticalityRole | None = None) -> int:
        return self._sum(role, "deadline_miss")

    def fault_exhaustions(self, role: CriticalityRole | None = None) -> int:
        return self._sum(role, "fault_exhausted")

    def kills(self, role: CriticalityRole | None = None) -> int:
        return self._sum(role, "killed")

    def temporal_failures(self, role: CriticalityRole | None = None) -> int:
        return self._sum(role, "temporal_failures")

    def max_response_time(self, task_name: str) -> float:
        """Largest observed response time of one task (0 if none finished)."""
        counters = self.per_task.get(task_name)
        return counters.max_response if counters else 0.0

    def empirical_pfh(self, role: CriticalityRole) -> float:
        """Observed failures-per-hour of ``role`` over the simulated span."""
        if self.horizon <= 0:
            return 0.0
        return self.temporal_failures(role) / self.hours

    def outcome_histogram(self) -> Counter:
        """Counts of all job outcomes across all tasks."""
        hist: Counter = Counter()
        for counters in self.per_task.values():
            hist["success"] += counters.success
            hist["fault-exhausted"] += counters.fault_exhausted
            hist["deadline-miss"] += counters.deadline_miss
            hist["killed"] += counters.killed
            hist["unfinished"] += counters.unfinished
        return hist

    def describe(self) -> str:
        """A compact human-readable run report."""
        lines = [
            f"simulated {self.hours:.4g} h "
            f"(busy {self.utilization_observed:.1%}, "
            f"{self.preemptions} preemptions)",
        ]
        if self.hi_mode_entered:
            lines.append(f"mode switch at t={self.mode_switch_time:g} ms")
        for role in (CriticalityRole.HI, CriticalityRole.LO):
            lines.append(
                f"{role.name}: released={self.released(role)} "
                f"ok={self.successes(role)} miss={self.deadline_misses(role)} "
                f"faulted={self.fault_exhaustions(role)} killed={self.kills(role)} "
                f"pfh={self.empirical_pfh(role):.3g}"
            )
        return "\n".join(lines)
