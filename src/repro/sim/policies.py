"""Runtime scheduling policies for the simulator.

A policy maps a ready job to a sortable priority key (smaller = more
urgent) given the current system mode.  Three policies are provided:

- :class:`EDFPolicy` — plain Earliest Deadline First;
- :class:`FixedPriorityPolicy` — static per-task priorities (e.g.
  Deadline Monotonic);
- :class:`EDFVDPolicy` — EDF with Virtual Deadlines: in LO mode HI jobs
  are ordered by the shortened deadline ``release + x * T_i``; after the
  mode switch every job uses its real deadline.
"""

from __future__ import annotations

import abc
from typing import Mapping

from repro.model.criticality import CriticalityRole
from repro.sim.jobs import Job

__all__ = ["SchedulingPolicy", "EDFPolicy", "FixedPriorityPolicy", "EDFVDPolicy"]


class SchedulingPolicy(abc.ABC):
    """Priority-key provider for the dispatcher."""

    name: str = "abstract"

    @abc.abstractmethod
    def priority_key(self, job: Job, hi_mode: bool) -> tuple:
        """Sort key of ``job``; the smallest key runs.

        Keys must totally order the ready queue; ties are broken by the
        engine on release time and task name for determinism.
        """


class EDFPolicy(SchedulingPolicy):
    """Earliest (real) Deadline First, mode-oblivious."""

    name = "edf"

    def priority_key(self, job: Job, hi_mode: bool) -> tuple:
        return (job.absolute_deadline,)


class FixedPriorityPolicy(SchedulingPolicy):
    """Static priorities: lower number = higher priority.

    ``priorities`` maps task names to priority levels, e.g. a
    Deadline-Monotonic assignment from
    :func:`repro.analysis.fixed_priority.deadline_monotonic_order`.
    """

    name = "fixed-priority"

    def __init__(self, priorities: Mapping[str, int]) -> None:
        self._priorities = dict(priorities)

    def priority_key(self, job: Job, hi_mode: bool) -> tuple:
        try:
            return (self._priorities[job.task.name],)
        except KeyError:
            raise KeyError(
                f"no priority assigned to task {job.task.name!r}"
            ) from None


class EDFVDPolicy(SchedulingPolicy):
    """EDF-VD runtime ordering [Baruah et al. 2012].

    In LO mode, a HI job released at ``r`` is ordered by its *virtual*
    deadline ``r + x * T_i`` (``x <= 1`` from the offline analysis,
    :func:`repro.analysis.edf_vd.edf_vd_x`); LO jobs use real deadlines.
    In HI mode every job is ordered by its real deadline.
    """

    name = "edf-vd"

    def __init__(self, x: float) -> None:
        if not 0.0 < x <= 1.0:
            raise ValueError(f"virtual deadline factor must be in (0, 1], got {x}")
        self.x = x

    def virtual_deadline(self, job: Job) -> float:
        """``release + x * T_i`` for HI jobs; the real deadline otherwise."""
        if job.task.criticality is CriticalityRole.HI:
            return job.release + self.x * job.task.period
        return job.absolute_deadline

    def priority_key(self, job: Job, hi_mode: bool) -> tuple:
        if hi_mode:
            return (job.absolute_deadline,)
        return (self.virtual_deadline(job),)
