"""Execution-time models for the simulator (footnote 1 of the paper).

The analytical formulas assume by default that every execution takes its
full WCET ``C_i``; footnote 1 notes the alternative where executions may
finish early (and the ``n_i C_i`` terms must drop to 0 in eqs. 1/4/6).
These callables plug into :class:`~repro.sim.engine.Simulator` via its
``execution_time_of`` parameter and let experiments exercise both regimes:

- :class:`FullWCET` — the paper's default (deterministic ``C_i``);
- :class:`UniformFraction` — each execution draws uniformly from
  ``[min_fraction * C_i, C_i]``, a common model of early completion.
"""

from __future__ import annotations

import numpy as np

from repro.model.task import Task

__all__ = ["FullWCET", "UniformFraction"]


class FullWCET:
    """Every execution takes exactly ``C_i`` (the paper's assumption)."""

    def __call__(self, task: Task) -> float:
        return task.wcet


class UniformFraction:
    """Executions take ``U(min_fraction, 1) * C_i``.

    ``min_fraction`` must lie in (0, 1]; 1 degenerates to
    :class:`FullWCET`.  Draws come from a seeded generator so runs are
    reproducible.
    """

    def __init__(self, seed: int | np.random.Generator = 0,
                 min_fraction: float = 0.5) -> None:
        if not 0.0 < min_fraction <= 1.0:
            raise ValueError(
                f"min fraction must be in (0, 1], got {min_fraction}"
            )
        self._rng = (
            seed if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._min_fraction = min_fraction

    def __call__(self, task: Task) -> float:
        if task.wcet == 0.0:
            return 0.0
        fraction = self._min_fraction + (1.0 - self._min_fraction) * float(
            self._rng.random()
        )
        return fraction * task.wcet
