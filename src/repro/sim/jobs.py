"""Runtime job state for the discrete-event simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.model.task import Task

__all__ = ["JobOutcome", "Job"]


class JobOutcome(enum.Enum):
    """Terminal state of one job (one *round* in the paper's terms)."""

    #: Still released/executing.
    PENDING = "pending"
    #: Some execution passed its sanity check before the deadline.
    SUCCESS = "success"
    #: All ``n_i`` executions faulted — the round fails (prob. ``f^n``).
    FAULT_EXHAUSTED = "fault-exhausted"
    #: Finished (or still running) past the absolute deadline.
    DEADLINE_MISS = "deadline-miss"
    #: Dropped by the mode switch (task killing of LO tasks).
    KILLED = "killed"

    @property
    def is_temporal_failure(self) -> bool:
        """Whether the round "does not successfully finish by its deadline".

        This is the paper's failure notion (Section 2.1): fault exhaustion,
        a deadline miss and being killed all deny the job's service.
        """
        return self in (
            JobOutcome.FAULT_EXHAUSTED,
            JobOutcome.DEADLINE_MISS,
            JobOutcome.KILLED,
        )


@dataclass
class Job:
    """One released instance of a task, tracking its execution attempts.

    A job performs up to ``max_attempts`` executions (``n_i``); each
    execution needs ``execution_time`` processor time.  ``remaining`` is
    the unfinished part of the *current* attempt.
    """

    task: Task
    release: float
    absolute_deadline: float
    max_attempts: int
    execution_time: float
    #: 1-based index of the attempt currently executing.
    attempt: int = 1
    remaining: float = field(default=0.0)
    outcome: JobOutcome = JobOutcome.PENDING
    finish_time: float | None = None
    #: Set by the engine when this job's attempt start triggered the switch.
    triggered_mode_switch: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.execution_time < 0:
            raise ValueError(
                f"execution time must be non-negative, got {self.execution_time}"
            )
        self.remaining = self.execution_time

    @property
    def name(self) -> str:
        return f"{self.task.name}@{self.release:g}#{self.attempt}"

    @property
    def done(self) -> bool:
        return self.outcome is not JobOutcome.PENDING

    def start_next_attempt(self) -> None:
        """Begin the next execution after a detected fault."""
        if self.attempt >= self.max_attempts:
            raise RuntimeError(f"{self.name}: no attempts left")
        self.attempt += 1
        self.remaining = self.execution_time

    def complete(self, now: float, success: bool) -> None:
        """Mark the job finished at ``now``.

        ``success=True`` records :attr:`JobOutcome.SUCCESS` unless the
        deadline has already passed, in which case the round is a temporal
        failure regardless of the sanity check.
        """
        self.finish_time = now
        if not success:
            self.outcome = JobOutcome.FAULT_EXHAUSTED
        elif now > self.absolute_deadline + 1e-9:
            self.outcome = JobOutcome.DEADLINE_MISS
        else:
            self.outcome = JobOutcome.SUCCESS

    def kill(self, now: float) -> None:
        """Drop the job at the mode switch (LO tasks under killing)."""
        self.finish_time = now
        self.outcome = JobOutcome.KILLED
