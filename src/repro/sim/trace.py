"""Execution tracing for the simulator: event log and ASCII Gantt chart.

A :class:`TraceRecorder` passed to :class:`~repro.sim.engine.Simulator`
records releases, execution segments, faults, completions, kills and the
mode switch.  Useful for debugging schedules, for the examples, and for
asserting fine-grained runtime behaviour in tests (e.g. "the LO job was
preempted exactly at the HI release").

When a :mod:`repro.obs` trace session is open, every recorded event is
also forwarded as an obs ``event`` named ``sim.<kind>`` (e.g.
``sim.mode-switch``) so simulator activity lands in the same JSONL
stream as analysis and runner spans.  Forwarding is on by default and
free when no session is active; pass ``forward=False`` to keep a
recorder purely local.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["TraceEventKind", "TraceEvent", "Segment", "TraceRecorder"]


class TraceEventKind(enum.Enum):
    RELEASE = "release"
    FAULT = "fault"
    ATTEMPT_OK = "attempt-ok"
    COMPLETE = "complete"
    KILL = "kill"
    MODE_SWITCH = "mode-switch"


@dataclass(frozen=True)
class TraceEvent:
    """One instantaneous event."""

    time: float
    kind: TraceEventKind
    task: str
    #: Attempt index for execution-related events, 0 otherwise.
    attempt: int = 0

    def to_record(self) -> dict[str, Any]:
        """JSON-serialisable form (the enum becomes its string value)."""
        return {
            "kind": self.kind.value,
            "task": self.task,
            "time": self.time,
            "attempt": self.attempt,
        }


@dataclass(frozen=True)
class Segment:
    """A maximal interval during which one job occupied the processor."""

    task: str
    start: float
    end: float
    attempt: int

    @property
    def length(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Accumulates events and processor segments during a run."""

    def __init__(self, forward: bool = True) -> None:
        self.events: list[TraceEvent] = []
        self.segments: list[Segment] = []
        #: Forward recorded events into an open obs trace session.
        self.forward = forward

    def _record(self, trace_event: TraceEvent) -> None:
        self.events.append(trace_event)
        if obs_metrics.enabled():  # guard: skip the name f-string when off
            obs_metrics.inc(f"sim.events.{trace_event.kind.value}")
        if self.forward and obs_trace.active_session() is not None:
            obs_trace.event(
                f"sim.{trace_event.kind.value}",
                task=trace_event.task,
                time=trace_event.time,
                attempt=trace_event.attempt,
            )

    # -- engine callbacks -----------------------------------------------------

    def on_release(self, task: str, time: float) -> None:
        self._record(TraceEvent(time, TraceEventKind.RELEASE, task))

    def on_segment(self, task: str, start: float, end: float, attempt: int) -> None:
        if end <= start:
            return
        last = self.segments[-1] if self.segments else None
        if (
            last is not None
            and last.task == task
            and last.attempt == attempt
            and abs(last.end - start) < 1e-9
        ):
            self.segments[-1] = Segment(task, last.start, end, attempt)
        else:
            self.segments.append(Segment(task, start, end, attempt))

    def on_fault(self, task: str, time: float, attempt: int) -> None:
        self._record(TraceEvent(time, TraceEventKind.FAULT, task, attempt))

    def on_attempt_ok(self, task: str, time: float, attempt: int) -> None:
        self._record(TraceEvent(time, TraceEventKind.ATTEMPT_OK, task, attempt))

    def on_complete(self, task: str, time: float) -> None:
        self._record(TraceEvent(time, TraceEventKind.COMPLETE, task))

    def on_kill(self, task: str, time: float) -> None:
        self._record(TraceEvent(time, TraceEventKind.KILL, task))

    def on_mode_switch(self, task: str, time: float) -> None:
        self._record(TraceEvent(time, TraceEventKind.MODE_SWITCH, task))

    # -- queries ---------------------------------------------------------------

    def events_of(self, kind: TraceEventKind) -> list[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def segments_of(self, task: str) -> list[Segment]:
        return [s for s in self.segments if s.task == task]

    def busy_time(self) -> float:
        return sum(s.length for s in self.segments)

    @property
    def mode_switch_time(self) -> float | None:
        switches = self.events_of(TraceEventKind.MODE_SWITCH)
        return switches[0].time if switches else None

    # -- rendering ---------------------------------------------------------------

    def gantt(self, until: float | None = None, width: int = 72) -> str:
        """ASCII Gantt chart of the recorded schedule.

        One row per task; ``#`` marks execution, ``.`` idle.  A ``|``
        column marks the mode switch when one occurred inside the window.
        """
        if not self.segments:
            return "(no execution recorded)"
        horizon = until if until is not None else max(s.end for s in self.segments)
        if horizon <= 0:
            return "(empty window)"
        tasks = sorted({s.task for s in self.segments})
        scale = width / horizon
        lines = []
        switch = self.mode_switch_time
        switch_col = (
            int(switch * scale) if switch is not None and switch < horizon else None
        )
        label_width = max(len(t) for t in tasks)
        for task in tasks:
            row = ["."] * width
            for segment in self.segments_of(task):
                first = int(segment.start * scale)
                last = max(int(segment.end * scale) - 1, first)
                for col in range(first, min(last + 1, width)):
                    row[col] = "#"
            if switch_col is not None and switch_col < width:
                row[switch_col] = "|"
            lines.append(f"{task.rjust(label_width)} {''.join(row)}")
        lines.append(
            f"{' ' * label_width} 0{' ' * max(width - 8, 1)}{horizon:g}"
        )
        if switch is not None:
            lines.append(f"mode switch at t={switch:g}")
        return "\n".join(lines)
