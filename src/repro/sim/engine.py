"""Preemptive uniprocessor discrete-event simulation engine.

The engine executes a dual-criticality task set under a pluggable
scheduling policy with transient-fault injection, task re-execution and
the paper's runtime adaptation mechanisms:

- every job performs up to ``n_i`` executions, re-executing while the
  fault injector reports failed sanity checks;
- when a HI job is dispatched for its ``(n'_i + 1)``-th attempt, the
  system switches to HI mode: LO jobs are killed and further LO releases
  suppressed (*killing*), or future LO inter-arrival times are stretched
  to ``df * T_i`` (*degradation*).

Scheduling is event-driven: the processor state only changes at job
releases and execution completions, so the engine advances between those
instants, preempting whenever a release makes a higher-priority job ready.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.model.criticality import CriticalityRole
from repro.model.faults import FaultToleranceConfig
from repro.model.task import Task, TaskSet
from repro.sim.fault_injection import FaultInjector, NoFaultInjector
from repro.sim.jobs import Job, JobOutcome
from repro.sim.metrics import SimulationMetrics
from repro.sim.policies import SchedulingPolicy
from repro.sim.trace import TraceRecorder

__all__ = ["ArrivalModel", "PeriodicArrivals", "SporadicArrivals", "Simulator"]

_TIME_EPS = 1e-9


class ArrivalModel:
    """Produces successive inter-arrival times for each task."""

    def interarrival(self, task: Task, effective_period: float) -> float:
        """Gap to the next release; must be >= ``effective_period``."""
        raise NotImplementedError


class PeriodicArrivals(ArrivalModel):
    """Worst-case sporadic behaviour: release as early as permitted."""

    def interarrival(self, task: Task, effective_period: float) -> float:
        return effective_period


class SporadicArrivals(ArrivalModel):
    """Sporadic releases with uniform extra delay.

    The gap is drawn uniformly from
    ``[T, (1 + jitter_fraction) * T]`` — legal sporadic behaviour that
    exercises non-synchronous arrival patterns.
    """

    def __init__(self, seed: int | np.random.Generator = 0,
                 jitter_fraction: float = 0.25) -> None:
        if jitter_fraction < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter_fraction}")
        self._rng = (
            seed if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._jitter = jitter_fraction

    def interarrival(self, task: Task, effective_period: float) -> float:
        return effective_period * (1.0 + self._rng.random() * self._jitter)


@dataclass
class _ReleaseState:
    """Per-task release bookkeeping."""

    task: Task
    next_release: float
    #: Current inter-arrival base (stretched by ``df`` after degradation).
    effective_period: float
    enabled: bool = True


class Simulator:
    """One simulation run of a task set under fault-tolerant scheduling.

    Parameters
    ----------
    taskset:
        The dual-criticality task set (original, *unconverted* model).
    policy:
        Runtime scheduling policy (EDF, FP or EDF-VD).
    config:
        Fault-tolerance knobs: re-execution profile ``N``, optional
        adaptation profile ``N'_HI`` and mechanism (kill/degrade).
    fault_injector:
        Source of sanity-check verdicts; defaults to fault-free.
    arrivals:
        Release-time model; defaults to periodic (worst-case sporadic).
    execution_time_of:
        Optional per-attempt execution-time model; defaults to the full
        WCET ``C_i`` (footnote 1 of the paper).  Values must lie in
        ``(0, C_i]``.
    """

    def __init__(
        self,
        taskset: TaskSet,
        policy: SchedulingPolicy,
        config: FaultToleranceConfig,
        fault_injector: FaultInjector | None = None,
        arrivals: ArrivalModel | None = None,
        execution_time_of: Callable[[Task], float] | None = None,
        trace: TraceRecorder | None = None,
        context_switch_cost: float = 0.0,
    ) -> None:
        config.reexecution.validate_for(taskset)
        if config.adaptation is not None:
            config.adaptation.validate_for(taskset, config.reexecution)
        self.taskset = taskset
        self.policy = policy
        self.config = config
        self.faults = fault_injector or NoFaultInjector()
        self.arrivals = arrivals or PeriodicArrivals()
        self.execution_time_of = execution_time_of or (lambda t: t.wcet)
        self.trace = trace
        if context_switch_cost < 0:
            raise ValueError(
                f"context switch cost must be non-negative, got "
                f"{context_switch_cost}"
            )
        self.context_switch_cost = context_switch_cost
        #: Remaining dispatch overhead to burn before the current job runs.
        self._overhead_left = 0.0

        self._hi_mode = False
        self._mode_switch_time: float | None = None
        self._releases: dict[str, _ReleaseState] = {}
        self._ready: list[Job] = []
        self._sequence = itertools.count()
        self._running: Job | None = None
        self._last_dispatched: Job | None = None

    # -- public API ---------------------------------------------------------

    def run(self, horizon: float) -> SimulationMetrics:
        """Simulate ``[0, horizon]`` and return the collected metrics."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        metrics = SimulationMetrics(self.taskset, horizon)
        release_heap: list[tuple[float, int, str]] = []
        for task in self.taskset:
            state = _ReleaseState(task, 0.0, task.period)
            self._releases[task.name] = state
            heapq.heappush(release_heap, (0.0, next(self._sequence), task.name))

        now = 0.0
        while now < horizon - _TIME_EPS:
            # 1. Admit all releases due now.
            while release_heap and release_heap[0][0] <= now + _TIME_EPS:
                _, _, name = heapq.heappop(release_heap)
                state = self._releases[name]
                if state.enabled:
                    self._release_job(state, metrics)
                gap = self.arrivals.interarrival(state.task, state.effective_period)
                state.next_release += gap
                if state.next_release < horizon - _TIME_EPS:
                    heapq.heappush(
                        release_heap,
                        (state.next_release, next(self._sequence), name),
                    )

            next_release = release_heap[0][0] if release_heap else math.inf
            job = self._pick_job(now, metrics)
            if job is None:
                if math.isinf(next_release):
                    break
                now = min(next_release, horizon)
                continue

            # 2a. Burn any pending dispatch overhead first (context-switch
            #     cost model); a release may preempt the overhead itself.
            if self._overhead_left > _TIME_EPS:
                run_until = min(now + self._overhead_left, next_release, horizon)
                delta = run_until - now
                self._overhead_left -= delta
                metrics.busy_time += delta
                metrics.overhead_time += delta
                now = run_until
                continue

            # 2b. Run the chosen job until it finishes its attempt or the
            #     next release forces a scheduling decision.
            run_until = min(now + job.remaining, next_release, horizon)
            delta = run_until - now
            job.remaining -= delta
            metrics.busy_time += delta
            if self.trace is not None:
                self.trace.on_segment(job.task.name, now, run_until, job.attempt)
            now = run_until
            if job.remaining <= _TIME_EPS and now < horizon + _TIME_EPS:
                self._attempt_finished(job, now, metrics)

        self._finalize(metrics, horizon)
        metrics.mode_switch_time = self._mode_switch_time
        return metrics

    @property
    def hi_mode(self) -> bool:
        return self._hi_mode

    # -- internals ------------------------------------------------------------

    def _release_job(self, state: _ReleaseState, metrics: SimulationMetrics) -> None:
        task = state.task
        exec_time = self.execution_time_of(task)
        if not 0.0 < exec_time <= task.wcet + _TIME_EPS:
            raise ValueError(
                f"execution time {exec_time} for {task.name} outside (0, C]"
            )
        job = Job(
            task=task,
            release=state.next_release,
            absolute_deadline=state.next_release + task.deadline,
            max_attempts=self.config.reexecution[task],
            execution_time=exec_time,
        )
        self._ready.append(job)
        metrics.counters(task.name).released += 1
        if self.trace is not None:
            self.trace.on_release(task.name, state.next_release)

    def _pick_job(self, now: float, metrics: SimulationMetrics) -> Job | None:
        """Highest-priority ready job; handles mode-switch-on-dispatch."""
        while True:
            candidates = [j for j in self._ready if not j.done]
            if not candidates:
                self._running = None
                return None
            job = min(
                candidates,
                key=lambda j: (
                    self.policy.priority_key(j, self._hi_mode),
                    j.release,
                    j.task.name,
                ),
            )
            if self._dispatch_triggers_switch(job):
                self._enter_hi_mode(job, now, metrics)
                # Re-evaluate: killing may have emptied the queue, and
                # priorities change with the mode.
                continue
            if self._running is not None and self._running is not job:
                if not self._running.done and self._running.remaining > _TIME_EPS:
                    metrics.preemptions += 1
            self._running = job
            if (
                self.context_switch_cost > 0.0
                and job is not self._last_dispatched
            ):
                # A fresh dispatch pays the context-switch cost; switching
                # away mid-overhead forfeits the remainder already paid.
                self._overhead_left = self.context_switch_cost
            self._last_dispatched = job
            return job

    def _dispatch_triggers_switch(self, job: Job) -> bool:
        """Whether dispatching ``job`` starts a ``(n' + 1)``-th HI attempt."""
        if self._hi_mode or self.config.adaptation is None:
            return False
        if job.task.criticality is not CriticalityRole.HI:
            return False
        return job.attempt > self.config.adaptation[job.task]

    def _enter_hi_mode(
        self, trigger: Job, now: float, metrics: SimulationMetrics
    ) -> None:
        self._hi_mode = True
        self._mode_switch_time = now
        trigger.triggered_mode_switch = True
        if self.trace is not None:
            self.trace.on_mode_switch(trigger.task.name, now)
        if self.config.mechanism == "kill":
            for job in self._ready:
                if job.task.criticality is CriticalityRole.LO and not job.done:
                    job.kill(now)
                    metrics.counters(job.task.name).record(job)
                    if self.trace is not None:
                        self.trace.on_kill(job.task.name, now)
            self._ready = [j for j in self._ready if not j.done]
            for state in self._releases.values():
                if state.task.criticality is CriticalityRole.LO:
                    state.enabled = False
        elif self.config.mechanism == "degrade":
            factor = self.config.degradation_factor
            assert factor is not None
            for state in self._releases.values():
                if state.task.criticality is CriticalityRole.LO:
                    state.effective_period = state.task.period * factor

    def _attempt_finished(
        self, job: Job, now: float, metrics: SimulationMetrics
    ) -> None:
        counters = metrics.counters(job.task.name)
        counters.executions += 1
        faulty = self.faults.execution_faulty(job.task, now)
        if faulty:
            counters.faults_injected += 1
            if self.trace is not None:
                self.trace.on_fault(job.task.name, now, job.attempt)
            if job.attempt < job.max_attempts:
                job.start_next_attempt()
                return
            job.complete(now, success=False)
        else:
            if self.trace is not None:
                self.trace.on_attempt_ok(job.task.name, now, job.attempt)
            job.complete(now, success=True)
        counters.record(job)
        if self.trace is not None:
            self.trace.on_complete(job.task.name, now)
        self._ready.remove(job)
        if self._running is job:
            self._running = None

    def _finalize(self, metrics: SimulationMetrics, horizon: float) -> None:
        """Account for jobs still pending at the horizon."""
        for job in self._ready:
            if job.done:
                continue
            counters = metrics.counters(job.task.name)
            if job.absolute_deadline <= horizon + _TIME_EPS:
                job.outcome = JobOutcome.DEADLINE_MISS
                job.finish_time = None
                counters.record(job)
            else:
                counters.unfinished += 1
