"""High-level simulation façade wiring FT-S results to the engine.

Given a successful :class:`~repro.core.ftmc.FTSResult`, this module builds
the matching runtime configuration — EDF-VD policy with the analysis'
virtual-deadline factor, re-execution and adaptation profiles, kill or
degrade mechanism — and runs the discrete-event engine, so experiments can
cross-validate the analytical guarantees empirically.
"""

from __future__ import annotations

from repro.analysis.edf_vd import analyse as edf_vd_analyse
from repro.core.ftmc import FTSResult
from repro.model.faults import (
    AdaptationProfile,
    FaultToleranceConfig,
    ReexecutionProfile,
)
from repro.model.task import TaskSet
from repro.sim.engine import ArrivalModel, Simulator
from repro.sim.fault_injection import BernoulliFaultInjector, FaultInjector
from repro.sim.metrics import SimulationMetrics
from repro.sim.policies import EDFPolicy, EDFVDPolicy, SchedulingPolicy

__all__ = ["build_simulator", "simulate_ft_result"]


def _policy_for(result: FTSResult) -> SchedulingPolicy:
    """EDF-VD policy with the factor implied by the converted set.

    Both the killing and the degradation variants of EDF-VD shorten HI
    deadlines by ``x = U_HI^LO / (1 - U_LO^LO)`` in LO mode; when the
    factor is undefined or the LO-mode load already fits under plain EDF,
    ``x`` collapses to 1 and the policy degenerates to EDF.
    """
    if result.mc_taskset is None:
        raise ValueError("FT-S result carries no converted task set")
    analysis = edf_vd_analyse(result.mc_taskset)
    if analysis.x is None or analysis.x >= 1.0:
        return EDFPolicy()
    return EDFVDPolicy(min(analysis.x, 1.0))


def build_simulator(
    taskset: TaskSet,
    result: FTSResult,
    fault_injector: FaultInjector | None = None,
    arrivals: ArrivalModel | None = None,
) -> Simulator:
    """Construct a :class:`Simulator` mirroring a successful FT-S run."""
    if not result.success:
        raise ValueError(f"cannot simulate a failed FT-S result: {result.failure}")
    assert result.n_hi is not None and result.n_lo is not None
    assert result.adaptation is not None
    if result.mechanism == "degrade" and result.degradation_factor is None:
        raise ValueError("degradation result carries no degradation factor")
    config = FaultToleranceConfig(
        reexecution=ReexecutionProfile.uniform(taskset, result.n_hi, result.n_lo),
        adaptation=AdaptationProfile.uniform(taskset, result.adaptation),
        degradation_factor=(
            None if result.mechanism == "kill" else result.degradation_factor
        ),
    )
    return Simulator(
        taskset,
        policy=_policy_for(result),
        config=config,
        fault_injector=fault_injector,
        arrivals=arrivals,
    )


def simulate_ft_result(
    taskset: TaskSet,
    result: FTSResult,
    horizon: float,
    seed: int = 0,
    probability_scale: float = 1.0,
    arrivals: ArrivalModel | None = None,
) -> SimulationMetrics:
    """Run one seeded simulation of a successful FT-S configuration.

    ``probability_scale`` inflates every task's failure probability so that
    rare events become observable in short horizons (see
    :class:`~repro.sim.fault_injection.BernoulliFaultInjector`).
    """
    injector = BernoulliFaultInjector(seed, probability_scale)
    simulator = build_simulator(taskset, result, injector, arrivals)
    return simulator.run(horizon)
