"""Shared numerical-tolerance policy for the schedulability analyses.

Every analysis in :mod:`repro.analysis` ultimately decides predicates of
the form ``demand(t) <= t``, ``U <= 1`` or ``R <= D`` over floating-point
task parameters.  Historically each module carried its own ad-hoc epsilon
(``1e-9`` here, ``1e-12`` there, none at all in
:func:`~repro.analysis.edf.demand_bound_function`), which produced two
concrete failure modes:

- **unsound accepts** — an epsilon-less ``floor((t - D)/T)`` undercounts a
  whole job when the boundary instant ``t = D + k*T`` is represented a few
  ulps low (e.g. ``D=0.2, T=0.3, k=13``: ``(4.1 - 0.2)/0.3`` evaluates to
  ``12.999...996``), so a test documented as *exact* accepted genuinely
  infeasible workloads;
- **divergent verdicts** — QPA and the straightforward PDC used different
  comparison tolerances for the same ``dbf(t) <= t`` predicate, breaking
  their documented identical-verdict property near boundaries.

This module is the single home for the policy.  The conventions:

- Quantities on the *time axis* (instants, demands, response times,
  deadlines) compare with a **relative** tolerance :data:`REL_EPS`,
  floored at 1 so values near zero are not compared at ulp resolution.
- Integer job counts snap to the nearest integer when within the relative
  tolerance, in the direction that keeps the analysis **sound**:
  :func:`floor_div` rounds *up* across a near-integer boundary (a job
  whose deadline sits on the window edge is counted), :func:`ceil_div`
  rounds *down* (a release at exactly ``t`` does not interfere in
  ``[0, t)``).
- Dimensionless utilization sums compare against their bound with the
  absolute slack :data:`UTIL_EPS` (they are O(1) by construction).
- Fixed-point iterations detect convergence with :func:`converged`.
- Probability/PFH comparisons outside the analyses (e.g. the Monte-Carlo
  soundness checks) use :data:`PROB_EPS`.

The self-check rule ``FTMCC06`` (see :mod:`repro.lint.codecheck`) forbids
raw epsilon literals anywhere else under ``repro/analysis`` so the
conventions cannot silently diverge again.
"""

from __future__ import annotations

import math

__all__ = [
    "REL_EPS",
    "UTIL_EPS",
    "CONVERGENCE_EPS",
    "PROB_EPS",
    "exceeds",
    "within",
    "strictly_below",
    "floor_div",
    "ceil_div",
    "job_count",
    "utilization_exceeds",
    "converged",
]

#: Relative comparison tolerance for time-axis quantities (instants,
#: demands, deadlines, response times), floored at an absolute scale of 1.
REL_EPS: float = 1e-9

#: Absolute slack for utilization-sum comparisons against their bound.
UTIL_EPS: float = 1e-12

#: Relative/absolute tolerance for fixed-point convergence detection.
CONVERGENCE_EPS: float = 1e-12

#: Absolute slack for probability/PFH comparisons (values in ``[0, 1]``).
PROB_EPS: float = 1e-15


def _span(a: float, b: float) -> float:
    """The comparison scale for two time-axis values: ``max(1, |a|, |b|)``."""
    return max(1.0, abs(a), abs(b))


def exceeds(a: float, b: float) -> bool:
    """``a > b`` beyond tolerance — the sound form of ``demand > supply``.

    Values within ``REL_EPS * max(1, |a|, |b|)`` of each other are treated
    as equal, so ``exceeds(dbf(t), t)`` does not reject a workload over an
    ulp-level excess, and its negation :func:`within` does not accept one
    over an ulp-level slack.
    """
    return a > b + REL_EPS * _span(a, b)


def within(a: float, b: float) -> bool:
    """``a <= b`` up to tolerance (the negation of :func:`exceeds`)."""
    return not exceeds(a, b)


def strictly_below(a: float, b: float) -> bool:
    """``a < b`` beyond tolerance (values within tolerance are equal)."""
    return a < b - REL_EPS * _span(a, b)


def floor_div(numerator: float, denominator: float) -> int:
    """Tolerance-aware ``floor(numerator / denominator)``.

    A quotient within tolerance *below* an integer snaps up to it: this is
    the sound direction for demand bounds, where
    ``floor((t - D)/T) + 1`` must count the job whose deadline lies
    exactly on the window edge even when the quotient is represented a few
    ulps low.
    """
    q = numerator / denominator
    return int(math.floor(q + REL_EPS * max(1.0, abs(q))))


def ceil_div(numerator: float, denominator: float) -> int:
    """Tolerance-aware ``ceil(numerator / denominator)``.

    A quotient within tolerance *above* an integer snaps down to it: this
    is the sound direction for interference terms, where ``ceil(r / T)``
    must not charge a whole extra job because ``r`` at an exact multiple
    of ``T`` is represented a few ulps high.
    """
    q = numerator / denominator
    return int(math.ceil(q - REL_EPS * max(1.0, abs(q))))


def job_count(t: float, deadline: float, period: float) -> int:
    """``floor((t - D)/T) + 1``: jobs with release and deadline in ``[0, t]``.

    May be zero or negative when ``t < deadline``; demand summations must
    clamp at zero.
    """
    return floor_div(t - deadline, period) + 1


def utilization_exceeds(total: float, bound: float = 1.0) -> bool:
    """Whether a utilization sum exceeds its bound beyond :data:`UTIL_EPS`."""
    return total > bound + UTIL_EPS


def converged(current: float, previous: float) -> bool:
    """Fixed-point convergence test for response-time recurrences."""
    return math.isclose(
        current, previous, rel_tol=CONVERGENCE_EPS, abs_tol=CONVERGENCE_EPS
    )
