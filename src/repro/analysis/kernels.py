"""NumPy-vectorized demand-bound kernels behind the scalar analyses.

The processor-demand criterion and the dbf-based MC test spend their time
in two loops: *enumerating* the absolute deadlines ``D_i + k*T_i`` below
the testing horizon, and *evaluating* ``dbf(t)`` at each of them.  Both
are embarrassingly parallel over check points, so this module provides
array kernels that compute whole point grids at once:

- :func:`workload_arrays` — project a workload onto ``(T, D, C)`` arrays;
- :func:`deadline_points` — every check instant up to a horizon;
- :func:`dbf_batch` — ``dbf`` at many instants in one shot;
- :func:`demand_satisfied` — the full ``dbf(t) <= t`` sweep.

All kernels follow the tolerance policy of
:mod:`repro.analysis.tolerance` bit-for-bit (same ``REL_EPS`` snapping in
the job-count floor, same comparison slack), so the scalar paths in
:mod:`repro.analysis.edf` / :mod:`repro.analysis.dbf_mc` — which remain
the reference oracle — return identical verdicts; the property suite
asserts this on the seeded generator corpus.

Setting the environment variable ``REPRO_NO_NUMPY`` to anything but
``0``/empty forces every caller back onto the scalar reference paths
(used by ``ftmc bench`` to record before/after numbers, and available as
an escape hatch on platforms without NumPy — the import is guarded).

On top of the per-set kernels sits the *sweep-batch* tier: cross-set
variants (:func:`dbf_batch_multi`, :func:`pdc_schedulable_multi`) that
stack the deadline-point/demand arrays of a whole acceptance sweep into
padded 2-D arrays and verdict the batch in one chunked pass, plus the
candidate-series evaluators in :mod:`repro.safety` and
:mod:`repro.core.profiles` gated on the same switch.  Setting
``REPRO_NO_BATCH`` truthy disables only this tier, keeping the per-set
NumPy kernels — ``ftmc bench`` uses the combination to price the batch
tier against the per-set path it replaced.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

from repro.analysis.tolerance import REL_EPS, UTIL_EPS
from repro.obs import metrics as obs_metrics

try:  # pragma: no cover - exercised only on NumPy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.edf import Workload

__all__ = [
    "NO_NUMPY_ENV",
    "NO_BATCH_ENV",
    "numpy_enabled",
    "batch_enabled",
    "kernel_tier",
    "workload_arrays",
    "deadline_points",
    "dbf_batch",
    "dbf_batch_multi",
    "dbf_single",
    "demand_satisfied",
    "max_deadline_at_or_below",
    "max_deadline_strictly_below",
    "pdc_schedulable",
    "pdc_schedulable_multi",
]

#: Environment variable disabling the NumPy kernels when set truthy.
NO_NUMPY_ENV: str = "REPRO_NO_NUMPY"

#: Environment variable disabling only the sweep-batch tier (cross-set
#: kernels and candidate-series evaluators) while keeping the per-set
#: NumPy kernels — the reference configuration for the batch benchmarks.
NO_BATCH_ENV: str = "REPRO_NO_BATCH"

#: Check instants are evaluated in chunks of this many rows so the
#: ``points x tasks`` quotient matrix stays cache-sized even near the
#: ``_MAX_TEST_POINTS`` enumeration bound.
_CHUNK: int = 16384


def numpy_enabled() -> bool:
    """Whether the vectorized kernels are active for this call.

    Checked at call time (not import time) so tests and ``ftmc bench``
    can toggle ``REPRO_NO_NUMPY`` within one process.
    """
    if np is None:
        return False
    return os.environ.get(NO_NUMPY_ENV, "") in ("", "0")


def batch_enabled() -> bool:
    """Whether the sweep-batch tier is active for this call.

    Like :func:`numpy_enabled` this is read at call time.  The batch tier
    changes only the *evaluation strategy* (stacked arrays, candidate
    series) of quantities the per-set NumPy path computes too, so it shares
    the ``"numpy"`` :func:`kernel_tier` — its verdicts are pinned
    equivalent to the per-set path by the oracle suite, and the EDF-VD
    series verdicts are bit-identical by construction (same Python float
    operations in the same order as ``analyse``).
    """
    if not numpy_enabled():
        return False
    return os.environ.get(NO_BATCH_ENV, "") in ("", "0")


def kernel_tier() -> str:
    """``"numpy"`` or ``"scalar"`` — the dispatch tier active *right now*.

    Because :func:`numpy_enabled` is read per call, a resident process can
    flip tiers mid-flight (``ftmc bench`` does, and a served toggle could).
    Anything that memoizes verdicts across calls must therefore key on the
    tier at call time — the two tiers are verdict-equivalent by contract,
    but a cache that conflates them would mask a tier-specific defect and
    make ``REPRO_NO_NUMPY`` useless as a diagnostic within one process.
    """
    return "numpy" if numpy_enabled() else "scalar"


def workload_arrays(workload: Sequence["Workload"]):
    """``(periods, deadlines, wcets)`` float arrays for a workload."""
    periods = np.fromiter((w.period for w in workload), float, len(workload))
    deadlines = np.fromiter((w.deadline for w in workload), float, len(workload))
    wcets = np.fromiter((w.wcet for w in workload), float, len(workload))
    return periods, deadlines, wcets


def _floor_eps(quotients):
    """Vectorized tolerance-aware floor (see ``tolerance.floor_div``)."""
    return np.floor(quotients + REL_EPS * np.maximum(1.0, np.abs(quotients)))


def _ceil_eps(quotients):
    """Vectorized tolerance-aware ceil (see ``tolerance.ceil_div``)."""
    return np.ceil(quotients - REL_EPS * np.maximum(1.0, np.abs(quotients)))


def dbf_single(periods, deadlines, wcets, t: float) -> float:
    """``dbf(t)`` at one instant over prebuilt arrays.

    The array analogue of :func:`repro.analysis.edf.demand_bound_function`
    for callers (QPA) that evaluate the dbf at data-dependent instants and
    therefore cannot batch them, but iterate often enough that the scalar
    per-task loop dominates.
    """
    jobs = _floor_eps((t - deadlines) / periods) + 1.0
    np.clip(jobs, 0.0, None, out=jobs)
    return float(jobs @ wcets)


def max_deadline_at_or_below(periods, deadlines, limit: float) -> float:
    """Largest absolute deadline ``D_i + k*T_i`` at most ``limit`` (tolerant).

    Mirrors ``qpa._max_deadline_at_or_below``: a deadline within the
    shared comparison slack of ``limit`` counts as equal and is included.
    Returns ``-inf`` when no deadline qualifies.
    """
    slack = REL_EPS * np.maximum(1.0, np.maximum(np.abs(deadlines), abs(limit)))
    mask = deadlines <= limit + slack
    if not mask.any():
        return -np.inf
    d = deadlines[mask]
    p = periods[mask]
    k = np.maximum(_floor_eps((limit - d) / p), 0.0)
    return float((d + k * p).max())


def max_deadline_strictly_below(periods, deadlines, limit: float) -> float:
    """Largest absolute deadline strictly below ``limit`` (tolerant).

    Mirrors ``qpa._max_deadline_strictly_below``: a deadline within
    tolerance of ``limit`` counts as equal and is excluded, keeping QPA's
    backward iteration strictly decreasing.  Returns ``-inf`` when no
    deadline qualifies.
    """
    slack = REL_EPS * np.maximum(1.0, np.maximum(np.abs(deadlines), abs(limit)))
    mask = deadlines < limit - slack
    if not mask.any():
        return -np.inf
    d = deadlines[mask]
    p = periods[mask]
    k = np.maximum(_ceil_eps((limit - d) / p) - 1.0, 0.0)
    return float((d + k * p).max())


def dbf_batch(periods, deadlines, wcets, instants):
    """``dbf(t)`` for every ``t`` in ``instants`` (``(m,) -> (m,)``).

    ``deadlines`` doubles as the per-task demand offset, so the same
    kernel serves the classical dbf (offset ``D_i``) and the HI-mode
    MC demand bound (offset ``D_i - x*D_i``).
    """
    obs_metrics.observe("analysis.kernels.dbf_batch.points", len(instants))
    out = np.empty(len(instants))
    for start in range(0, len(instants), _CHUNK):
        ts = instants[start : start + _CHUNK]
        quotients = (ts[:, None] - deadlines[None, :]) / periods[None, :]
        jobs = _floor_eps(quotients) + 1.0
        np.clip(jobs, 0.0, None, out=jobs)
        out[start : start + _CHUNK] = jobs @ wcets
    return out


def deadline_points(periods, deadlines, horizon: float):
    """Every absolute deadline ``D_i + k*T_i`` in ``(0, horizon]``, sorted.

    Instants are generated per task with the same tolerance-aware count
    the scalar enumeration uses (a deadline within tolerance of the
    horizon is included), then deduplicated.
    """
    counts = _floor_eps((horizon - deadlines) / periods).astype(int)
    valid = counts >= 0
    if not valid.any():
        return np.empty(0)
    # Flat construction of deadline + period * k for k in 0..count per
    # task, without a Python-level loop: repeat each task's (D, T) over
    # its point count and rebuild the per-task k index from a cumsum.
    lengths = counts[valid] + 1
    starts = np.cumsum(lengths) - lengths
    k = np.arange(int(lengths.sum())) - np.repeat(starts, lengths)
    points = np.repeat(deadlines[valid], lengths) + np.repeat(
        periods[valid], lengths
    ) * k
    points = np.unique(points)
    return points[points > 0.0]


def demand_satisfied(periods, deadlines, wcets, horizon: float) -> bool:
    """Whether ``dbf(t) <= t`` holds at every check instant up to ``horizon``.

    The comparison uses the shared relative slack (``tolerance.within``),
    vectorized.  Instants are swept in chunks with an early exit on the
    first violation.
    """
    points = deadline_points(periods, deadlines, horizon)
    obs_metrics.observe("analysis.kernels.sweep.points", len(points))
    for start in range(0, len(points), _CHUNK):
        ts = points[start : start + _CHUNK]
        demands = dbf_batch(periods, deadlines, wcets, ts)
        slack = REL_EPS * np.maximum(1.0, np.maximum(np.abs(demands), np.abs(ts)))
        if bool((demands > ts + slack).any()):
            return False
    return True


def pdc_schedulable(periods, deadlines, wcets, max_points: int) -> bool:
    """Full processor-demand verdict on prebuilt arrays.

    The array analogue of the ``_pdc_common`` preamble plus sweep of
    :mod:`repro.analysis.edf`: utilization bound, testing horizon ``L``,
    conservative rejection when the enumeration would exceed
    ``max_points`` check instants, then the ``dbf(t) <= t`` sweep.  For
    callers (the dbf-MC factor scan) that re-test many derived workloads
    sharing ``(T, C)`` arrays, this skips rebuilding workload objects and
    re-summing utilizations per test.  Zero-wcet entries must already be
    filtered out.
    """
    if periods.size == 0:
        return True
    util_each = wcets / periods
    total = float(util_each.sum())
    if total > 1.0 + UTIL_EPS:
        return False
    d_max = float(deadlines.max())
    if total >= 1.0:
        span = float(periods.max()) + d_max
        horizon = max(d_max, 2.0 * span * periods.size)
    else:
        la = float(((periods - deadlines) * util_each).sum())
        horizon = max(d_max, max(la, 0.0) / (1.0 - total))
    if (horizon / float(periods.min())) * periods.size > max_points:
        return False  # intractable horizon: reject conservatively
    return demand_satisfied(periods, deadlines, wcets, horizon)


def dbf_batch_multi(periods2d, deadlines2d, wcets2d, instants, set_idx):
    """``dbf`` over *many task sets at once*: demand of set ``set_idx[k]``
    at instant ``instants[k]``.

    ``periods2d``/``deadlines2d``/``wcets2d`` are ``(n_sets, width)``
    arrays padded to a common width; padding columns must carry
    ``wcet = 0`` (their job counts are computed but contribute no demand)
    and positive periods/deadlines so the quotients stay finite.  This is
    the demand evaluator behind :func:`pdc_schedulable_multi`: one call
    sweeps the concatenated check instants of a whole acceptance sweep.
    """
    obs_metrics.observe("analysis.kernels.dbf_batch_multi.points", len(instants))
    out = np.empty(len(instants))
    for start in range(0, len(instants), _CHUNK):
        ts = instants[start : start + _CHUNK]
        rows = set_idx[start : start + _CHUNK]
        quotients = (ts[:, None] - deadlines2d[rows]) / periods2d[rows]
        jobs = _floor_eps(quotients) + 1.0
        np.clip(jobs, 0.0, None, out=jobs)
        out[start : start + _CHUNK] = np.einsum("ij,ij->i", jobs, wcets2d[rows])
    return out


def pdc_schedulable_multi(sets, max_points: int):
    """Processor-demand verdicts for many task sets in one stacked sweep.

    ``sets`` is a sequence of ``(periods, deadlines, wcets)`` array
    triples, one per task set, each under the same contract as
    :func:`pdc_schedulable` (zero-wcet entries already filtered out; the
    sets may be ragged — any sizes, including empty).  Returns a boolean
    array of per-set verdicts.

    The per-set preamble (utilization bound, testing horizon, point-count
    bail-out) runs with exactly the float operations of
    :func:`pdc_schedulable`; sets it cannot decide are stacked into padded
    2-D arrays and their deadline points concatenated (tagged with a row
    index) so the whole sweep goes through :func:`dbf_batch_multi` in
    cache-sized chunks, with an early exit once every surviving set has
    been refuted.
    """
    n_sets = len(sets)
    verdicts = np.ones(n_sets, dtype=bool)
    undecided: list[tuple[int, float]] = []
    for s, (periods, deadlines, wcets) in enumerate(sets):
        if periods.size == 0:
            continue  # vacuously schedulable
        util_each = wcets / periods
        total = float(util_each.sum())
        if total > 1.0 + UTIL_EPS:
            verdicts[s] = False
            continue
        d_max = float(deadlines.max())
        if total >= 1.0:
            span = float(periods.max()) + d_max
            horizon = max(d_max, 2.0 * span * periods.size)
        else:
            la = float(((periods - deadlines) * util_each).sum())
            horizon = max(d_max, max(la, 0.0) / (1.0 - total))
        if (horizon / float(periods.min())) * periods.size > max_points:
            verdicts[s] = False  # intractable horizon: reject conservatively
            continue
        undecided.append((s, horizon))
    if not undecided:
        return verdicts
    width = max(sets[s][0].size for s, _ in undecided)
    periods2d = np.ones((len(undecided), width))
    deadlines2d = np.ones((len(undecided), width))
    wcets2d = np.zeros((len(undecided), width))
    points_parts: list = []
    idx_parts: list = []
    rows = np.empty(len(undecided), dtype=int)
    for row, (s, horizon) in enumerate(undecided):
        periods, deadlines, wcets = sets[s]
        periods2d[row, : periods.size] = periods
        deadlines2d[row, : deadlines.size] = deadlines
        wcets2d[row, : wcets.size] = wcets
        rows[row] = s
        points = deadline_points(periods, deadlines, horizon)
        points_parts.append(points)
        idx_parts.append(np.full(points.size, row, dtype=int))
    points = np.concatenate(points_parts)
    set_idx = np.concatenate(idx_parts)
    obs_metrics.observe("analysis.kernels.multi_sweep.points", len(points))
    alive = np.ones(len(undecided), dtype=bool)
    for start in range(0, len(points), _CHUNK):
        ts = points[start : start + _CHUNK]
        chunk_rows = set_idx[start : start + _CHUNK]
        demands = dbf_batch_multi(periods2d, deadlines2d, wcets2d, ts, chunk_rows)
        slack = REL_EPS * np.maximum(1.0, np.maximum(np.abs(demands), np.abs(ts)))
        violated = demands > ts + slack
        if violated.any():
            alive[chunk_rows[violated]] = False
            if not alive.any():
                break
    verdicts[rows[~alive]] = False
    return verdicts
