"""Static Mixed Criticality (SMC) fixed-priority analysis.

Vestal's original analysis [RTSS 2007], in the formulation of the
Burns/Davis review (reference [7] of the paper): priorities are static and
no mode switch is modelled; instead, each task's interference from a
higher-priority task ``tau_j`` is budgeted at the *lower* of the two
criticalities (runtime monitoring stops LO tasks from exceeding
``C(LO)``):

    ``R_i = C_i(chi_i) + sum_{j in hp(i)} ceil(R_i / T_j) * C_j(min(chi_i, chi_j))``

SMC is the weakest of the fixed-priority MC tests (AMC dominates it) but
also the cheapest, and it completes the backend spectrum for the
Theorem 4.1 ablation: utilization-based (EDF-VD), demand-based (dbf-mc),
response-time static (SMC) and response-time adaptive (AMC-rtb/max).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis import tolerance
from repro.analysis.fixed_priority import audsley_assignment
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet

__all__ = ["smc_response_times", "smc_schedulable_with_order", "smc_schedulable"]

_MAX_ITERATIONS = 100_000


def _budget(task: MCTask, level: CriticalityRole) -> float:
    """``C(min(chi_i, chi_j))`` — the interference budget of SMC."""
    return task.wcet(CriticalityRole(min(task.criticality, level)))


def _own_budget(task: MCTask) -> float:
    """A task's own budget ``C_i(chi_i)``."""
    return task.wcet(task.criticality)


def smc_response_times(ordered: Sequence[MCTask]) -> list[float | None]:
    """SMC worst-case response times, highest priority first.

    Entries are ``None`` when the recurrence exceeds the deadline.
    Requires constrained deadlines (like all simple RTA recurrences).
    """
    for t in ordered:
        if tolerance.exceeds(t.deadline, t.period):
            raise ValueError(
                f"SMC requires constrained deadlines; {t.name} has "
                f"D={t.deadline} > T={t.period}"
            )
    results: list[float | None] = []
    for i, task in enumerate(ordered):
        hp = ordered[:i]
        own = _own_budget(task)
        r = own
        fixed_point: float | None = None
        for _ in range(_MAX_ITERATIONS):
            interference = sum(
                tolerance.ceil_div(r, j.period) * _budget(j, task.criticality)
                for j in hp
            )
            r_next = own + interference
            if tolerance.exceeds(r_next, task.deadline):
                break
            if tolerance.converged(r_next, r):
                fixed_point = r_next
                break
            r = r_next
        results.append(fixed_point)
    return results


def smc_schedulable_with_order(ordered: Sequence[MCTask]) -> bool:
    """SMC feasibility for a given priority order."""
    return all(r is not None for r in smc_response_times(ordered))


def _feasible_at_lowest(candidate: MCTask, others: Sequence[MCTask]) -> bool:
    ordered = list(others) + [candidate]
    return smc_response_times(ordered)[-1] is not None


def smc_schedulable(mc: MCTaskSet) -> bool:
    """SMC feasibility under Audsley's optimal priority assignment."""
    return audsley_assignment(list(mc), _feasible_at_lowest) is not None
