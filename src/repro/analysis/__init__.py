"""Schedulability analyses: classical EDF/FP and mixed-criticality tests."""

from repro.analysis.amc import (
    amc_rtb_response_times,
    amc_rtb_schedulable,
    amc_rtb_schedulable_with_order,
)
from repro.analysis.amc_max import (
    amc_max_response_times,
    amc_max_schedulable,
    amc_max_schedulable_with_order,
)
from repro.analysis.dbf_mc import (
    DbfMCAnalysis,
    dbf_mc_analyse,
    dbf_mc_schedulable,
)
from repro.analysis.smc import (
    smc_response_times,
    smc_schedulable,
    smc_schedulable_with_order,
)
from repro.analysis.edf import (
    Workload,
    demand_bound_function,
    edf_processor_demand_test,
    edf_processor_demand_test_reference,
    edf_schedulable,
    edf_utilization_test,
    inflated_workload,
    schedulable_without_adaptation,
    workload_from_taskset,
)
from repro.analysis.edf_vd import (
    EDFVDAnalysis,
    edf_vd_schedulable,
    edf_vd_utilization,
    edf_vd_x,
)
from repro.analysis.edf_vd_degradation import (
    EDFVDDegradationAnalysis,
    edf_vd_degradation_schedulable,
    edf_vd_degradation_utilization,
)
from repro.analysis.qpa import qpa_schedulable
from repro.analysis.fixed_priority import (
    audsley_assignment,
    deadline_monotonic_order,
    dm_schedulable,
    response_time,
    rta_schedulable,
)

__all__ = [
    "amc_max_response_times",
    "amc_max_schedulable",
    "amc_max_schedulable_with_order",
    "smc_response_times",
    "smc_schedulable",
    "smc_schedulable_with_order",
    "DbfMCAnalysis",
    "dbf_mc_analyse",
    "dbf_mc_schedulable",
    "amc_rtb_response_times",
    "amc_rtb_schedulable",
    "amc_rtb_schedulable_with_order",
    "Workload",
    "demand_bound_function",
    "edf_processor_demand_test",
    "edf_processor_demand_test_reference",
    "edf_schedulable",
    "edf_utilization_test",
    "inflated_workload",
    "schedulable_without_adaptation",
    "workload_from_taskset",
    "EDFVDAnalysis",
    "edf_vd_schedulable",
    "edf_vd_utilization",
    "edf_vd_x",
    "EDFVDDegradationAnalysis",
    "edf_vd_degradation_schedulable",
    "edf_vd_degradation_utilization",
    "qpa_schedulable",
    "audsley_assignment",
    "deadline_monotonic_order",
    "dm_schedulable",
    "response_time",
    "rta_schedulable",
]
