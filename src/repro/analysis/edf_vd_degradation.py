"""EDF-VD with service degradation [Huang et al., ASP-DAC 2014].

The degradation variant of EDF-VD keeps LO tasks alive after the mode
switch but stretches their inter-arrival times to ``df * T_i``.  The
sufficient test cited by the paper (eq. 12) is::

    max( U_HI^LO + U_LO^LO,
         U_HI^HI / (1 - U_HI^LO / (1 - U_LO^LO)) + U_LO^LO / (df - 1) ) <= 1

which Algorithm 2's line 11 replacement (eq. 11) re-expresses through
``lambda(n) = n * U_HI / (1 - U_LO^LO)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.tolerance import utilization_exceeds
from repro.model.mc_task import MCTaskSet

__all__ = [
    "EDFVDDegradationAnalysis",
    "edf_vd_degradation_utilization",
    "edf_vd_degradation_schedulable",
]


@dataclass(frozen=True)
class EDFVDDegradationAnalysis:
    """Result of the degradation-mode EDF-VD test on one MC task set."""

    degradation_factor: float
    u_hi_lo: float
    u_hi_hi: float
    u_lo_lo: float
    #: LO-mode EDF load (identical to the killing variant).
    lo_mode_load: float
    #: HI-mode load with degraded LO service.
    hi_mode_load: float
    #: ``U_MC`` under degradation (eq. 11).
    u_mc: float
    #: ``lambda = U_HI^LO / (1 - U_LO^LO)``; ``None`` when undefined.
    lam: float | None

    @property
    def schedulable(self) -> bool:
        """Whether eq. (12) holds: ``U_MC <= 1``."""
        return not utilization_exceeds(self.u_mc)


def analyse(mc: MCTaskSet, degradation_factor: float) -> EDFVDDegradationAnalysis:
    """Run the degradation test (eq. 12) on ``mc`` with factor ``df``."""
    if degradation_factor <= 1.0:
        raise ValueError(
            f"degradation factor must be > 1, got {degradation_factor}"
        )
    if not mc.is_implicit_deadline:
        raise ValueError("EDF-VD analysis requires implicit deadlines")
    u_hi_lo = mc.u_hi_lo
    u_hi_hi = mc.u_hi_hi
    u_lo_lo = mc.u_lo_lo
    lo_mode = u_hi_lo + u_lo_lo
    lam: float | None
    if u_lo_lo >= 1.0:
        lam = None
        hi_mode = math.inf
    else:
        lam = u_hi_lo / (1.0 - u_lo_lo)
        if lam >= 1.0:
            hi_mode = math.inf
        else:
            hi_mode = u_hi_hi / (1.0 - lam) + u_lo_lo / (degradation_factor - 1.0)
    return EDFVDDegradationAnalysis(
        degradation_factor=degradation_factor,
        u_hi_lo=u_hi_lo,
        u_hi_hi=u_hi_hi,
        u_lo_lo=u_lo_lo,
        lo_mode_load=lo_mode,
        hi_mode_load=hi_mode,
        u_mc=max(lo_mode, hi_mode),
        lam=lam,
    )


def edf_vd_degradation_utilization(mc: MCTaskSet, degradation_factor: float) -> float:
    """``U_MC`` under EDF-VD with service degradation (eq. 11)."""
    return analyse(mc, degradation_factor).u_mc


def edf_vd_degradation_schedulable(mc: MCTaskSet, degradation_factor: float) -> bool:
    """Whether ``mc`` passes the degradation test of eq. (12)."""
    return analyse(mc, degradation_factor).schedulable
