"""Classical fixed-priority schedulability analysis.

Provides the single-criticality machinery reused by the AMC mixed-
criticality test (:mod:`repro.analysis.amc`) and available as an FT-S
backend in its own right (the paper's Appendix B remarks that classical
techniques such as Deadline Monotonic can be integrated):

- exact response-time analysis (RTA) for constrained-deadline sporadic
  tasks under preemptive fixed-priority scheduling;
- Deadline-Monotonic (DM) priority assignment, optimal for
  constrained-deadline synchronous task sets;
- Audsley's Optimal Priority Assignment (OPA) for tests that are
  OPA-compatible.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.edf import Workload
from repro.analysis.tolerance import ceil_div, converged, exceeds

__all__ = [
    "response_time",
    "rta_schedulable",
    "deadline_monotonic_order",
    "dm_schedulable",
    "audsley_assignment",
]

#: Iteration guard for the RTA fixed point.  A diverging response time
#: exceeds the deadline long before this; the guard only protects against
#: pathological float inputs.
_MAX_ITERATIONS: int = 100_000


def response_time(
    task: Workload, higher_priority: Sequence[Workload], limit: float | None = None
) -> float | None:
    """Worst-case response time of ``task`` under the given interferers.

    Solves the classical recurrence
    ``R = C_i + sum_j ceil(R / T_j) * C_j`` by fixed-point iteration.
    Returns ``None`` when the iteration exceeds ``limit`` (defaults to the
    task's deadline) — i.e. the task is unschedulable.
    """
    bound = task.deadline if limit is None else limit
    r = task.wcet
    for _ in range(_MAX_ITERATIONS):
        interference = sum(
            ceil_div(r, w.period) * w.wcet for w in higher_priority
        )
        r_next = task.wcet + interference
        if exceeds(r_next, bound):
            return None
        if converged(r_next, r):
            return r_next
        r = r_next
    return None


def rta_schedulable(workload: Sequence[Workload]) -> bool:
    """RTA feasibility of ``workload`` in the given priority order.

    ``workload[0]`` is the highest priority.  Valid for constrained
    deadlines (``D <= T``); raises otherwise, because the simple recurrence
    is unsound for arbitrary deadlines.
    """
    for w in workload:
        if exceeds(w.deadline, w.period):
            raise ValueError(
                "RTA requires constrained deadlines; "
                f"got D={w.deadline} > T={w.period}"
            )
    for i, w in enumerate(workload):
        if response_time(w, workload[:i]) is None:
            return False
    return True


def deadline_monotonic_order(workload: Sequence[Workload]) -> list[Workload]:
    """Sort by relative deadline, shortest first (highest priority)."""
    return sorted(workload, key=lambda w: (w.deadline, w.period, -w.wcet))


def dm_schedulable(workload: Sequence[Workload]) -> bool:
    """RTA under the Deadline-Monotonic priority assignment."""
    ordered = deadline_monotonic_order(workload)
    return rta_schedulable(ordered)


def audsley_assignment(
    items: Sequence,
    feasible_at_lowest: Callable[[object, Sequence], bool],
) -> list | None:
    """Audsley's Optimal Priority Assignment.

    Repeatedly searches an item that is feasible at the lowest remaining
    priority level given that all other remaining items have higher
    priority.  ``feasible_at_lowest(item, others)`` must implement the
    priority-level test; it must be OPA-compatible (independent of the
    relative order of ``others``).

    Returns the items ordered from highest to lowest priority, or ``None``
    when no complete assignment exists.
    """
    remaining = list(items)
    assigned_low_to_high: list = []
    while remaining:
        placed = False
        for candidate in remaining:
            others = [x for x in remaining if x is not candidate]
            if feasible_at_lowest(candidate, others):
                assigned_low_to_high.append(candidate)
                remaining = others
                placed = True
                break
        if not placed:
            return None
    assigned_low_to_high.reverse()
    return assigned_low_to_high
