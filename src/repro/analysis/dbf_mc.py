"""Demand-bound-function based dual-criticality EDF analysis.

A library extension (not part of the paper's evaluation): a
demand-based sufficient test for dual-criticality EDF with virtual
deadlines, in the spirit of Ekberg & Yi, *"Bounding and shaping the demand
of mixed-criticality sporadic tasks"* (ECRTS 2012) — reference [9] of the
paper.  It demonstrates Theorem 4.1's claim that *any* conventional MC
schedulability technique can back FT-S, and is often less pessimistic than
the utilization test of eq. (10) on task sets with diverse periods.

Model (simplified from Ekberg-Yi):

- In LO mode, every HI task runs against a shortened virtual deadline
  ``x * D_i`` (one global scaling factor rather than per-task tuning);
  the LO-mode test is the exact processor-demand criterion on the
  LO budgets with those deadlines.
- After the switch, HI jobs must finish their full ``C_i(HI)`` within
  their real deadlines.  A HI job whose virtual deadline falls inside the
  switch window contributes its whole HI budget; the demand of the
  carry-over job is *not* credited with work done before the switch
  (Ekberg-Yi's ``done`` term), which keeps the bound sound at the price of
  some pessimism:

  ``dbf_HI(tau_i, l) = max(0, floor((l - (D_i - x D_i)) / T_i) + 1) * C_i(HI)``

- LO tasks are dropped at the switch and contribute nothing in HI mode.

Feasibility searches a descending grid of scaling factors ``x``; smaller
``x`` relieves HI mode and burdens LO mode, so the two tests are checked
together for each candidate.  Because the LO-mode test is monotone in
``x`` (shrinking the virtual deadlines only raises the LO demand), the
scan stops at the first LO-infeasible factor instead of trying every
smaller one.

Performance: the HI-mode point enumeration runs on the vectorized
kernels of :mod:`repro.analysis.kernels` (scalar reference retained, and
selected under ``REPRO_NO_NUMPY``), it inherits the ``_MAX_TEST_POINTS``
conservative-reject guard of the classical PDC — a HI utilization just
below 1 would otherwise enumerate millions of instants — and the
per-factor workloads are derived from arrays built once per analysis
rather than rebuilt for all grid steps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import kernels
from repro.analysis.edf import _MAX_TEST_POINTS, Workload
from repro.analysis.qpa import qpa_schedulable
from repro.analysis.tolerance import (
    exceeds,
    job_count,
    utilization_exceeds,
    within,
)
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTaskSet
from repro.obs import metrics as obs_metrics

__all__ = ["DbfMCAnalysis", "dbf_mc_schedulable", "dbf_mc_analyse"]

#: Candidate virtual-deadline scaling factors, searched descending from 1.
_X_GRID_STEPS: int = 50


@dataclass(frozen=True)
class DbfMCAnalysis:
    """Outcome of the dbf-based dual-criticality test."""

    schedulable: bool
    #: The scaling factor that passed both tests (``None`` if none did).
    x: float | None


def _lo_mode_workload(mc: MCTaskSet, x: float) -> list[Workload]:
    """LO-mode demand: LO budgets, virtual deadlines for HI tasks."""
    items = []
    for task in mc:
        deadline = (
            x * task.deadline
            if task.criticality is CriticalityRole.HI
            else task.deadline
        )
        if task.wcet_lo > 0:
            items.append(Workload(task.period, deadline, task.wcet_lo))
    return items


def _hi_mode_demand(mc: MCTaskSet, x: float, window: float) -> float:
    """Sum of the HI-mode demand bounds over the HI tasks."""
    demand = 0.0
    for task in mc.hi_tasks:
        offset = task.deadline - x * task.deadline
        jobs = job_count(window, offset, task.period)
        if jobs > 0:
            demand += jobs * task.wcet_hi
    return demand


def _hi_mode_horizon(mc: MCTaskSet, x: float) -> float | None:
    """Testing horizon of the HI-mode sweep; ``None`` when intractable.

    The bound mirrors :func:`repro.analysis.edf._pdc_testing_horizon`
    with the demand offsets ``D_i - x D_i``: beyond ``L_a`` the
    utilization bound dominates the demand.  Like the classical PDC, a
    horizon that would require more than ``_MAX_TEST_POINTS`` check
    instants (HI utilization pathologically close to 1) yields ``None``
    and the caller rejects conservatively — the guard the scalar
    implementation historically lacked, which let a single near-critical
    task set stall a whole sweep shard.
    """
    hi_tasks = mc.hi_tasks
    utilization = sum(t.utilization(CriticalityRole.HI) for t in hi_tasks)
    d_max = max(t.deadline for t in hi_tasks)
    if utilization >= 1.0:
        horizon = 2.0 * (max(t.period for t in hi_tasks) + d_max) * len(hi_tasks)
    else:
        la = sum(
            (t.period - (t.deadline - x * t.deadline))
            * t.utilization(CriticalityRole.HI)
            for t in hi_tasks
        )
        horizon = max(d_max, max(la, 0.0) / (1.0 - utilization))
    min_period = min(t.period for t in hi_tasks)
    if (horizon / min_period) * len(hi_tasks) > _MAX_TEST_POINTS:
        return None
    return horizon


def _hi_mode_scan_reference(mc: MCTaskSet, x: float, horizon: float) -> bool:
    """Scalar HI-mode sweep — the reference oracle for the kernels."""
    points: set[float] = set()
    for task in mc.hi_tasks:
        offset = task.deadline - x * task.deadline
        instant = offset
        while within(instant, horizon):
            if instant > 0:
                points.add(instant)
            instant += task.period
    for instant in sorted(points):
        if exceeds(_hi_mode_demand(mc, x, instant), instant):
            return False
    return True


def _hi_mode_test(mc: MCTaskSet, x: float) -> bool:
    """``dbf_HI(l) <= l`` at every HI-mode deadline up to the horizon."""
    hi_tasks = mc.hi_tasks
    if not hi_tasks:
        return True
    if utilization_exceeds(
        sum(t.utilization(CriticalityRole.HI) for t in hi_tasks)
    ):
        return False
    horizon = _hi_mode_horizon(mc, x)
    if horizon is None:
        return False  # intractable horizon: reject conservatively
    if kernels.numpy_enabled():
        import numpy as np

        periods = np.fromiter((t.period for t in hi_tasks), float, len(hi_tasks))
        deadlines = np.fromiter(
            (t.deadline for t in hi_tasks), float, len(hi_tasks)
        )
        wcets = np.fromiter((t.wcet_hi for t in hi_tasks), float, len(hi_tasks))
        offsets = deadlines - x * deadlines
        return kernels.demand_satisfied(periods, offsets, wcets, horizon)
    return _hi_mode_scan_reference(mc, x, horizon)


def dbf_mc_analyse(mc: MCTaskSet, x_steps: int = _X_GRID_STEPS) -> DbfMCAnalysis:
    """Search a scaling factor ``x`` passing both mode tests.

    Scans ``x`` from 1 downward; the first factor whose LO-mode PDC *and*
    HI-mode demand test both hold wins.  (As ``x`` falls the LO-mode test
    tightens — shorter virtual deadlines — while the HI-mode test relaxes,
    so the feasible factors form an interval and the scan reports its
    upper end.)  The LO-mode monotonicity also means the scan can stop at
    the first LO-infeasible factor: every smaller ``x`` only adds LO-mode
    demand.
    """
    if x_steps < 1:
        raise ValueError(f"need at least one grid step, got {x_steps}")
    obs_metrics.inc("analysis.dbf_mc.calls")
    if kernels.numpy_enabled():
        return _record_analysis(_analyse_vectorized(mc, x_steps))
    # The per-factor LO workload differs from the base one only in the HI
    # tasks' virtual deadlines; derive the invariant parts once instead of
    # rebuilding everything for all grid steps.
    lo_static = [
        Workload(task.period, task.deadline, task.wcet_lo)
        for task in mc
        if task.criticality is not CriticalityRole.HI and task.wcet_lo > 0
    ]
    hi_scaled = [
        (task.period, task.deadline, task.wcet_lo)
        for task in mc.hi_tasks
        if task.wcet_lo > 0
    ]
    steps_visited = 0
    try:
        for step in range(x_steps, 0, -1):
            steps_visited += 1
            x = step / x_steps
            lo_workload = lo_static + [
                Workload(period, x * deadline, wcet)
                for period, deadline, wcet in hi_scaled
            ]
            if not qpa_schedulable(lo_workload):
                break  # LO mode only tightens as x falls: no smaller x can pass
            if _hi_mode_test(mc, x):
                return _record_analysis(DbfMCAnalysis(schedulable=True, x=x))
        return _record_analysis(DbfMCAnalysis(schedulable=False, x=None))
    finally:
        obs_metrics.inc("analysis.dbf_mc.x_steps", steps_visited)


def _record_analysis(analysis: DbfMCAnalysis) -> DbfMCAnalysis:
    """Count the verdict into the obs registry (no-op when disabled)."""
    if analysis.schedulable:
        obs_metrics.inc("analysis.dbf_mc.schedulable")
    return analysis


def _analyse_vectorized(mc: MCTaskSet, x_steps: int) -> DbfMCAnalysis:
    """Array-based factor scan — verdict-identical to the scalar path.

    Everything that does not depend on ``x`` (the ``(T, C)`` arrays, the
    utilization sums, the HI-mode horizon ingredients) is computed once;
    each grid step then only rescales the deadline/offset vectors and runs
    the vectorized sweeps.  The LO-mode check uses the full PDC rather
    than QPA: the two are verdict-equivalent (asserted by the property
    suite), and the batched sweep beats QPA's inherently sequential
    backward iteration once the demand evaluations are vectorized.
    """
    import numpy as np

    lo_items = [
        (t.period, t.deadline, t.wcet_lo, t.criticality is CriticalityRole.HI)
        for t in mc
        if t.wcet_lo > 0
    ]
    lo_periods = np.array([item[0] for item in lo_items], dtype=float)
    lo_deadlines = np.array([item[1] for item in lo_items], dtype=float)
    lo_wcets = np.array([item[2] for item in lo_items], dtype=float)
    virtual = np.array([item[3] for item in lo_items], dtype=bool)

    hi_tasks = mc.hi_tasks
    if hi_tasks:
        hi_periods = np.fromiter(
            (t.period for t in hi_tasks), float, len(hi_tasks)
        )
        hi_deadlines = np.fromiter(
            (t.deadline for t in hi_tasks), float, len(hi_tasks)
        )
        hi_wcets = np.fromiter(
            (t.wcet_hi for t in hi_tasks), float, len(hi_tasks)
        )
        hi_util_each = hi_wcets / hi_periods
        hi_total = float(hi_util_each.sum())
        if utilization_exceeds(hi_total):
            return DbfMCAnalysis(schedulable=False, x=None)
        hi_d_max = float(hi_deadlines.max())
        hi_p_min = float(hi_periods.min())
        # Horizon fallback for U_HI == 1 (see ``_hi_mode_horizon``).
        hi_span = 2.0 * (float(hi_periods.max()) + hi_d_max) * len(hi_tasks)

    steps_visited = 0
    for step in range(x_steps, 0, -1):
        steps_visited += 1
        x = step / x_steps
        # HI mode first.  The scalar scan checks LO mode at every factor
        # it visits, but its own early-break invariant — LO mode only
        # tightens as x falls — means the verdict is decided entirely at
        # the first HI-feasible factor: if LO mode fails there, it fails
        # at every smaller factor too, and every larger factor already
        # failed HI mode.  So the scan runs only the HI sweep per step
        # and the LO sweep exactly once.
        if hi_tasks:
            offsets = hi_deadlines - x * hi_deadlines
            if hi_total >= 1.0:
                horizon = hi_span
            else:
                la = float(((hi_periods - offsets) * hi_util_each).sum())
                horizon = max(hi_d_max, max(la, 0.0) / (1.0 - hi_total))
            if (horizon / hi_p_min) * len(hi_tasks) > _MAX_TEST_POINTS:
                continue  # intractable horizon: reject conservatively
            if not kernels.demand_satisfied(
                hi_periods, offsets, hi_wcets, horizon
            ):
                continue
        if lo_items:
            deadlines = np.where(virtual, x * lo_deadlines, lo_deadlines)
            if not kernels.pdc_schedulable(
                lo_periods, deadlines, lo_wcets, _MAX_TEST_POINTS
            ):
                break  # LO mode only tightens as x falls: no factor passes
        obs_metrics.inc("analysis.dbf_mc.x_steps", steps_visited)
        return DbfMCAnalysis(schedulable=True, x=x)
    obs_metrics.inc("analysis.dbf_mc.x_steps", steps_visited)
    return DbfMCAnalysis(schedulable=False, x=None)


def dbf_mc_schedulable(mc: MCTaskSet) -> bool:
    """Whether some virtual-deadline scaling passes both demand tests."""
    return dbf_mc_analyse(mc).schedulable
