"""Demand-bound-function based dual-criticality EDF analysis.

A library extension (not part of the paper's evaluation): a
demand-based sufficient test for dual-criticality EDF with virtual
deadlines, in the spirit of Ekberg & Yi, *"Bounding and shaping the demand
of mixed-criticality sporadic tasks"* (ECRTS 2012) — reference [9] of the
paper.  It demonstrates Theorem 4.1's claim that *any* conventional MC
schedulability technique can back FT-S, and is often less pessimistic than
the utilization test of eq. (10) on task sets with diverse periods.

Model (simplified from Ekberg-Yi):

- In LO mode, every HI task runs against a shortened virtual deadline
  ``x * D_i`` (one global scaling factor rather than per-task tuning);
  the LO-mode test is the exact processor-demand criterion on the
  LO budgets with those deadlines.
- After the switch, HI jobs must finish their full ``C_i(HI)`` within
  their real deadlines.  A HI job whose virtual deadline falls inside the
  switch window contributes its whole HI budget; the demand of the
  carry-over job is *not* credited with work done before the switch
  (Ekberg-Yi's ``done`` term), which keeps the bound sound at the price of
  some pessimism:

  ``dbf_HI(tau_i, l) = max(0, floor((l - (D_i - x D_i)) / T_i) + 1) * C_i(HI)``

- LO tasks are dropped at the switch and contribute nothing in HI mode.

Feasibility searches a descending grid of scaling factors ``x``; smaller
``x`` relieves HI mode and burdens LO mode, so the two tests are checked
together for each candidate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.edf import Workload
from repro.analysis.qpa import qpa_schedulable
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTaskSet

__all__ = ["DbfMCAnalysis", "dbf_mc_schedulable", "dbf_mc_analyse"]

#: Candidate virtual-deadline scaling factors, searched descending from 1.
_X_GRID_STEPS: int = 50


@dataclass(frozen=True)
class DbfMCAnalysis:
    """Outcome of the dbf-based dual-criticality test."""

    schedulable: bool
    #: The scaling factor that passed both tests (``None`` if none did).
    x: float | None


def _lo_mode_workload(mc: MCTaskSet, x: float) -> list[Workload]:
    """LO-mode demand: LO budgets, virtual deadlines for HI tasks."""
    items = []
    for task in mc:
        deadline = (
            x * task.deadline
            if task.criticality is CriticalityRole.HI
            else task.deadline
        )
        if task.wcet_lo > 0:
            items.append(Workload(task.period, deadline, task.wcet_lo))
    return items


def _hi_mode_demand(mc: MCTaskSet, x: float, window: float) -> float:
    """Sum of the HI-mode demand bounds over the HI tasks."""
    demand = 0.0
    for task in mc.hi_tasks:
        offset = task.deadline - x * task.deadline
        jobs = math.floor((window - offset) / task.period + 1e-9) + 1
        if jobs > 0:
            demand += jobs * task.wcet_hi
    return demand


def _hi_mode_test(mc: MCTaskSet, x: float) -> bool:
    """``dbf_HI(l) <= l`` at every HI-mode deadline up to the horizon."""
    hi_tasks = mc.hi_tasks
    if not hi_tasks:
        return True
    utilization = sum(t.utilization(CriticalityRole.HI) for t in hi_tasks)
    if utilization > 1.0 + 1e-12:
        return False
    # Horizon: beyond L_a the utilization bound dominates the demand, as in
    # the classical PDC argument with offsets D_i - x D_i.
    d_max = max(t.deadline for t in hi_tasks)
    if utilization >= 1.0:
        horizon = 2.0 * (max(t.period for t in hi_tasks) + d_max) * len(hi_tasks)
    else:
        la = sum(
            (t.period - (t.deadline - x * t.deadline))
            * t.utilization(CriticalityRole.HI)
            for t in hi_tasks
        )
        horizon = max(d_max, max(la, 0.0) / (1.0 - utilization))
    points: set[float] = set()
    for task in hi_tasks:
        offset = task.deadline - x * task.deadline
        instant = offset
        while instant <= horizon:
            if instant > 0:
                points.add(instant)
            instant += task.period
    for instant in sorted(points):
        if _hi_mode_demand(mc, x, instant) > instant + 1e-9:
            return False
    return True


def dbf_mc_analyse(mc: MCTaskSet, x_steps: int = _X_GRID_STEPS) -> DbfMCAnalysis:
    """Search a scaling factor ``x`` passing both mode tests.

    Scans ``x`` from 1 downward; the first factor whose LO-mode PDC *and*
    HI-mode demand test both hold wins.  (As ``x`` falls the LO-mode test
    tightens — shorter virtual deadlines — while the HI-mode test relaxes,
    so the feasible factors form an interval and the scan reports its
    upper end.)
    """
    if x_steps < 1:
        raise ValueError(f"need at least one grid step, got {x_steps}")
    for step in range(x_steps, 0, -1):
        x = step / x_steps
        if not qpa_schedulable(_lo_mode_workload(mc, x)):
            continue
        if _hi_mode_test(mc, x):
            return DbfMCAnalysis(schedulable=True, x=x)
    return DbfMCAnalysis(schedulable=False, x=None)


def dbf_mc_schedulable(mc: MCTaskSet) -> bool:
    """Whether some virtual-deadline scaling passes both demand tests."""
    return dbf_mc_analyse(mc).schedulable
