"""Quick Processor-demand Analysis (QPA) for EDF [Zhang & Burns 2009].

An exact EDF test equivalent to the processor-demand criterion
(:func:`repro.analysis.edf.edf_processor_demand_test`) but typically
orders of magnitude faster: instead of checking ``dbf(t) <= t`` at every
absolute deadline below the horizon, QPA iterates *backwards* from the
horizon —

    t   <- max{ d : d < L }           (the largest deadline below L)
    loop:
        h <- dbf(t)
        if h < t:  t <- h                      (jump down to the demand)
        elif h == t and t > 0:  t <- max deadline strictly below t
        else (h > t): UNSCHEDULABLE
    until t <= d_min  ->  SCHEDULABLE

The library uses QPA inside the dbf-based MC backend's LO-mode check and
exposes it standalone; the property suite asserts exact agreement with
the straightforward PDC on random workloads.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analysis.edf import (
    Workload,
    _pdc_testing_horizon,
    demand_bound_function,
)

__all__ = ["qpa_schedulable"]


def _max_deadline_below(workload: Sequence[Workload], limit: float) -> float:
    """Largest absolute deadline ``D_i + k T_i`` strictly below ``limit``."""
    best = -math.inf
    for w in workload:
        if w.deadline < limit:
            k = math.floor((limit - w.deadline) / w.period - 1e-12)
            candidate = w.deadline + max(k, 0) * w.period
            while candidate >= limit - 1e-12:
                candidate -= w.period
            if candidate >= w.deadline - 1e-12:
                best = max(best, candidate)
    return best


def qpa_schedulable(workload: Sequence[Workload]) -> bool:
    """Exact EDF feasibility via Quick Processor-demand Analysis.

    Shares its testing-horizon bound (and the conservative rejection of
    intractable near-``U = 1`` horizons) with the straightforward PDC, so
    the two tests return identical verdicts on every input.
    """
    workload = [w for w in workload if w.wcet > 0]
    if not workload:
        return True
    if sum(w.utilization for w in workload) > 1.0 + 1e-12:
        return False
    horizon = _pdc_testing_horizon(workload)
    if horizon is None:
        return False  # intractable horizon: reject conservatively
    d_min = min(w.deadline for w in workload)
    t = _max_deadline_below(workload, horizon + 1e-9)
    if t == -math.inf:
        return True
    guard = 0
    while t > d_min + 1e-9:
        guard += 1
        if guard > 10_000_000:  # pragma: no cover - defensive only
            raise RuntimeError("QPA failed to converge")
        h = demand_bound_function(workload, t)
        if h > t + 1e-9:
            return False
        if h < t - 1e-9:
            t = h
        else:
            t = _max_deadline_below(workload, t)
            if t == -math.inf:
                return True
    return demand_bound_function(workload, d_min) <= d_min + 1e-9
