"""Quick Processor-demand Analysis (QPA) for EDF [Zhang & Burns 2009].

An exact EDF test equivalent to the processor-demand criterion
(:func:`repro.analysis.edf.edf_processor_demand_test`) but typically
orders of magnitude faster: instead of checking ``dbf(t) <= t`` at every
absolute deadline below the horizon, QPA iterates *backwards* from the
horizon —

    t   <- max{ d : d < L }           (the largest deadline below L)
    loop:
        h <- dbf(t)
        if h < t:  t <- h                      (jump down to the demand)
        elif h == t and t > 0:  t <- max deadline strictly below t
        else (h > t): UNSCHEDULABLE
    until t <= d_min  ->  SCHEDULABLE

The library uses QPA inside the dbf-based MC backend's LO-mode check and
exposes it standalone; the property suite asserts exact agreement with
the straightforward PDC on random workloads.  All comparisons follow the
shared policy of :mod:`repro.analysis.tolerance` — the same ``dbf``
job-count snapping and ``dbf(t) <= t`` slack as the PDC, which is what
makes the identical-verdict property hold at boundary instants.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analysis import kernels
from repro.analysis.edf import (
    Workload,
    _pdc_testing_horizon,
    demand_bound_function,
)
from repro.analysis.tolerance import (
    ceil_div,
    exceeds,
    floor_div,
    strictly_below,
    utilization_exceeds,
    within,
)
from repro.obs import metrics as obs_metrics

__all__ = ["qpa_schedulable"]

#: Below this many tasks the scalar per-task loops beat the NumPy kernels
#: (array construction and dispatch overhead dominate); at or above it the
#: backward iteration evaluates ``dbf`` through
#: :func:`repro.analysis.kernels.dbf_single`.  Verdicts are identical on
#: both sides — the kernels follow the same tolerance snapping.
_VECTOR_MIN_TASKS: int = 12


def _max_deadline_strictly_below(
    workload: Sequence[Workload], limit: float
) -> float:
    """Largest absolute deadline ``D_i + k T_i`` strictly below ``limit``.

    "Strictly below" is tolerance-aware: a deadline within the shared
    comparison slack of ``limit`` counts as equal and is excluded, which
    keeps the backward iteration strictly decreasing.
    """
    best = -math.inf
    for w in workload:
        if not strictly_below(w.deadline, limit):
            continue
        # Largest k with D + k*T < limit: ceil((limit - D)/T) - 1, where a
        # quotient within tolerance of an integer m snaps to m (so a
        # deadline landing on `limit` itself is excluded).
        k = ceil_div(limit - w.deadline, w.period) - 1
        candidate = w.deadline + max(k, 0) * w.period
        best = max(best, candidate)
    return best


def _max_deadline_at_or_below(
    workload: Sequence[Workload], limit: float
) -> float:
    """Largest absolute deadline ``D_i + k T_i`` at most ``limit`` (tolerant)."""
    best = -math.inf
    for w in workload:
        if not within(w.deadline, limit):
            continue
        k = floor_div(limit - w.deadline, w.period)
        candidate = w.deadline + max(k, 0) * w.period
        best = max(best, candidate)
    return best


def qpa_schedulable(workload: Sequence[Workload]) -> bool:
    """Exact EDF feasibility via Quick Processor-demand Analysis.

    Shares its testing-horizon bound (and the conservative rejection of
    intractable near-``U = 1`` horizons) with the straightforward PDC, so
    the two tests return identical verdicts on every input.
    """
    obs_metrics.inc("analysis.qpa.calls")
    workload = [w for w in workload if w.wcet > 0]
    if not workload:
        return True
    if utilization_exceeds(sum(w.utilization for w in workload)):
        return False
    horizon = _pdc_testing_horizon(workload)
    if horizon is None:
        return False  # intractable horizon: reject conservatively
    d_min = min(w.deadline for w in workload)
    if kernels.numpy_enabled() and len(workload) >= _VECTOR_MIN_TASKS:
        periods, deadlines, wcets = kernels.workload_arrays(workload)

        def dbf(instant: float) -> float:
            return kernels.dbf_single(periods, deadlines, wcets, instant)

        def prev_deadline(limit: float) -> float:
            return kernels.max_deadline_strictly_below(
                periods, deadlines, limit
            )

        t = kernels.max_deadline_at_or_below(periods, deadlines, horizon)
    else:

        def dbf(instant: float) -> float:
            return demand_bound_function(workload, instant)

        def prev_deadline(limit: float) -> float:
            return _max_deadline_strictly_below(workload, limit)

        t = _max_deadline_at_or_below(workload, horizon)
    if t == -math.inf:
        return True
    guard = 0
    # Iteration counting happens once per call (in the finally), not per
    # iteration — the backward loop is the hot path the obs overhead
    # contract protects (docs/observability.md).
    try:
        while exceeds(t, d_min):
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - defensive only
                raise RuntimeError("QPA failed to converge")
            h = dbf(t)
            if exceeds(h, t):
                return False
            if strictly_below(h, t):
                t = h
            else:
                t = prev_deadline(t)
                if t == -math.inf:
                    return True
        return within(dbf(d_min), d_min)
    finally:
        obs_metrics.inc("analysis.qpa.iterations", guard)