"""Classical (single-criticality) EDF schedulability analysis.

Used as the *no-adaptation baseline* in the paper's experiments: when task
killing / service degradation is not adopted, every job of ``tau_i`` must
be budgeted its full ``n_i * C_i`` of execution, and the system is
schedulable iff the inflated task set is EDF-schedulable.

Two classic tests are provided:

- the utilization bound ``U <= 1`` (exact for implicit-deadline sporadic
  tasks on a preemptive uniprocessor);
- the processor-demand criterion (PDC) with demand-bound functions, exact
  for constrained- and arbitrary-deadline sporadic task sets
  [Baruah/Rosier/Howell].

Both operate on plain (single-WCET) workloads described as
``(period, deadline, wcet)`` triples, so they are reusable by the MC
analyses, the simulator and the FT-S baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.analysis import kernels
from repro.analysis.tolerance import (
    exceeds,
    job_count,
    utilization_exceeds,
    within,
)
from repro.model.faults import ReexecutionProfile
from repro.model.task import Task, TaskSet

__all__ = [
    "Workload",
    "workload_from_taskset",
    "inflated_workload",
    "edf_utilization_test",
    "demand_bound_function",
    "edf_processor_demand_test",
    "edf_processor_demand_test_batch",
    "edf_processor_demand_test_reference",
    "edf_schedulable",
    "schedulable_without_adaptation",
    "schedulable_without_adaptation_batch",
]


@dataclass(frozen=True)
class Workload:
    """A plain sporadic workload item ``(T, D, C)`` for classical analyses."""

    period: float
    deadline: float
    wcet: float

    def __post_init__(self) -> None:
        if self.period <= 0 or self.deadline <= 0 or self.wcet < 0:
            raise ValueError(f"invalid workload item {self}")

    @property
    def utilization(self) -> float:
        return self.wcet / self.period


def workload_from_taskset(
    taskset: TaskSet, wcet_of: Callable[[Task], float] | None = None
) -> list[Workload]:
    """Project a :class:`TaskSet` onto plain workload triples.

    ``wcet_of`` lets callers substitute inflated budgets (e.g.
    ``n_i * C_i``); defaults to the tasks' single-execution WCETs.
    """
    get = wcet_of or (lambda t: t.wcet)
    return [Workload(t.period, t.deadline, get(t)) for t in taskset]


def inflated_workload(
    taskset: TaskSet, reexecution: ReexecutionProfile
) -> list[Workload]:
    """Workload with each task budgeted ``n_i * C_i`` (all re-executions)."""
    reexecution.validate_for(taskset)
    return workload_from_taskset(taskset, lambda t: reexecution[t] * t.wcet)


def edf_utilization_test(workload: Iterable[Workload]) -> bool:
    """``sum C/T <= 1``: exact for implicit-deadline sporadic tasks."""
    return not utilization_exceeds(sum(w.utilization for w in workload))


def demand_bound_function(workload: Sequence[Workload], t: float) -> float:
    """``dbf(t) = sum_i max(0, floor((t - D_i)/T_i) + 1) * C_i``.

    The maximum cumulative execution demand of jobs with both release and
    deadline inside any window of length ``t``.  The job-count floor is
    tolerance-aware (:func:`repro.analysis.tolerance.job_count`): at a
    boundary instant ``t = D_i + k*T_i`` whose floating-point image is a
    few ulps low, the ``(k+1)``-th job is still counted — an epsilon-less
    floor undercounts a whole job there and turns the PDC/QPA tests into
    unsound accepts.
    """
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    demand = 0.0
    for w in workload:
        jobs = job_count(t, w.deadline, w.period)
        if jobs > 0:
            demand += jobs * w.wcet
    return demand


#: Bail-out threshold for the PDC/QPA point enumeration.  Workloads whose
#: testing horizon would require more check points than this (utilization
#: pathologically close to 1 with constrained deadlines) are rejected
#: *conservatively*: the tests stay sound (never accept an unschedulable
#: set) at the price of possible pessimism on such borderline inputs.
_MAX_TEST_POINTS: int = 200_000


def _pdc_testing_horizon(workload: Sequence[Workload]) -> float | None:
    """Upper bound on the instants that must be checked by the PDC.

    For ``U < 1`` the classical bound is::

        L = max( max_i D_i,  sum_i (T_i - D_i) * U_i / (1 - U) )

    beyond which ``dbf(t) <= t`` is implied by ``U <= 1``.  Returns
    ``None`` when enumerating deadlines up to the bound is intractable
    (see :data:`_MAX_TEST_POINTS`) — callers must then reject
    conservatively.
    """
    utilization = sum(w.utilization for w in workload)
    d_max = max(w.deadline for w in workload)
    if utilization >= 1.0:
        # Caller has already rejected U > 1; U == 1 needs the hyperperiod
        # in general — fall back to a generous multiple of the largest
        # period + deadline, which is exact for the integer-parameter
        # workloads used in this library's experiments.
        span = max(w.period for w in workload) + d_max
        horizon = max(d_max, 2.0 * span * len(workload))
    else:
        la = sum((w.period - w.deadline) * w.utilization for w in workload)
        horizon = max(d_max, max(la, 0.0) / (1.0 - utilization))
    min_period = min(w.period for w in workload)
    points = (horizon / min_period) * len(workload)
    if points > _MAX_TEST_POINTS:
        return None
    return horizon


def _pdc_scan_reference(workload: Sequence[Workload], horizon: float) -> bool:
    """Scalar ``dbf(t) <= t`` sweep — the reference oracle for the kernels."""
    # The check instants are the absolute deadlines D_i + k*T_i <= horizon.
    points: set[float] = set()
    for w in workload:
        k = 0
        while True:
            t = w.deadline + k * w.period
            if not within(t, horizon):
                break
            points.add(t)
            k += 1
    for t in sorted(points):
        if exceeds(demand_bound_function(workload, t), t):
            return False
    return True


def _pdc_common(workload: Sequence[Workload]) -> tuple[list[Workload], float] | bool:
    """Shared PDC preamble: verdict when decided early, else (workload, horizon)."""
    workload = [w for w in workload if w.wcet > 0]
    if not workload:
        return True
    if utilization_exceeds(sum(w.utilization for w in workload)):
        return False
    horizon = _pdc_testing_horizon(workload)
    if horizon is None:
        return False  # intractable horizon: reject conservatively
    return workload, horizon


def edf_processor_demand_test(workload: Sequence[Workload]) -> bool:
    """Exact EDF test via the processor-demand criterion.

    Schedulable iff ``U <= 1`` and ``dbf(t) <= t`` at every absolute
    deadline ``t`` up to the testing horizon.  The sweep runs on the
    vectorized kernels (:mod:`repro.analysis.kernels`) when NumPy is
    available; the scalar reference path
    (:func:`edf_processor_demand_test_reference`) returns identical
    verdicts and remains the oracle.
    """
    prepared = _pdc_common(workload)
    if isinstance(prepared, bool):
        return prepared
    workload, horizon = prepared
    if kernels.numpy_enabled():
        periods, deadlines, wcets = kernels.workload_arrays(workload)
        return kernels.demand_satisfied(periods, deadlines, wcets, horizon)
    return _pdc_scan_reference(workload, horizon)


def edf_processor_demand_test_batch(
    workloads: Sequence[Sequence[Workload]],
) -> list[bool]:
    """The PDC over many workloads in one stacked sweep.

    With the sweep-batch tier active
    (:func:`repro.analysis.kernels.batch_enabled`) the workloads are
    projected onto arrays and verdicted together by
    :func:`repro.analysis.kernels.pdc_schedulable_multi` — one padded
    2-D demand sweep for the whole batch instead of one kernel dispatch
    per set.  Under ``REPRO_NO_BATCH`` (or without NumPy) each workload
    falls back to :func:`edf_processor_demand_test`, which remains the
    per-set oracle for this path.
    """
    if not kernels.batch_enabled():
        return [edf_processor_demand_test(w) for w in workloads]
    filtered = [[w for w in workload if w.wcet > 0] for workload in workloads]
    triples = [kernels.workload_arrays(w) for w in filtered]
    return [bool(v) for v in kernels.pdc_schedulable_multi(triples, _MAX_TEST_POINTS)]


def edf_processor_demand_test_reference(workload: Sequence[Workload]) -> bool:
    """The PDC on the scalar reference path, regardless of NumPy.

    Identical verdicts to :func:`edf_processor_demand_test` by
    construction; kept callable directly so the equivalence suite and
    ``ftmc bench`` can pit the kernels against it.
    """
    prepared = _pdc_common(workload)
    if isinstance(prepared, bool):
        return prepared
    return _pdc_scan_reference(*prepared)


def edf_schedulable(workload: Sequence[Workload]) -> bool:
    """Dispatch to the cheapest exact test for the given workload.

    Implicit-deadline workloads use the utilization bound; everything else
    goes through the processor-demand criterion.
    """
    workload = list(workload)
    if not workload:
        return True
    if all(math.isclose(w.deadline, w.period) for w in workload):
        return edf_utilization_test(workload)
    return edf_processor_demand_test(workload)


def schedulable_without_adaptation(
    taskset: TaskSet, reexecution: ReexecutionProfile
) -> bool:
    """The paper's no-adaptation baseline.

    Every job is budgeted all its ``n_i`` executions and the system is
    scheduled by plain EDF: schedulable iff the inflated workload passes
    the (exact) EDF test.  This is the reference against which Figs. 3a-3d
    measure the benefit of task killing / service degradation.
    """
    return edf_schedulable(inflated_workload(taskset, reexecution))


def schedulable_without_adaptation_batch(
    tasksets: Sequence[TaskSet],
    reexecutions: Sequence[ReexecutionProfile],
) -> list[bool]:
    """:func:`schedulable_without_adaptation` over a whole sweep of sets.

    Per-set dispatch mirrors :func:`edf_schedulable` exactly — empty and
    implicit-deadline workloads keep their (cheap, scalar) utilization
    test — while every workload that needs the PDC is deferred into one
    :func:`edf_processor_demand_test_batch` call, so an acceptance sweep
    with constrained-deadline sets pays a single stacked demand sweep.
    """
    verdicts: list[bool | None] = []
    pending: list[int] = []
    pending_workloads: list[list[Workload]] = []
    for taskset, reexecution in zip(tasksets, reexecutions):
        workload = inflated_workload(taskset, reexecution)
        if not workload:
            verdicts.append(True)
        elif all(math.isclose(w.deadline, w.period) for w in workload):
            verdicts.append(edf_utilization_test(workload))
        else:
            pending.append(len(verdicts))
            pending_workloads.append(workload)
            verdicts.append(None)
    if pending:
        for index, verdict in zip(
            pending, edf_processor_demand_test_batch(pending_workloads)
        ):
            verdicts[index] = verdict
    return [bool(v) for v in verdicts]
