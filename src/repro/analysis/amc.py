"""Adaptive Mixed Criticality (AMC) fixed-priority analysis.

AMC-rtb [Baruah, Burns, Davis, RTSS 2011] is the standard fixed-priority
response-time test for dual-criticality systems: tasks are scheduled with
static priorities; when any job exceeds its ``C(LO)`` budget the system
switches to HI mode and LO tasks are abandoned.

The paper's FT-S template (Algorithm 1) is scheduler-agnostic — Theorem
4.1 only needs *some* MC-schedulability test ``S`` that is monotone in the
killing profile.  This module supplies AMC-rtb with Audsley priority
assignment so the experiments can ablate the EDF-VD backend against a
fixed-priority one.

Response-time bounds (constrained deadlines):

- LO-mode, all tasks::

      R_i^LO = C_i(LO) + sum_{j in hp(i)} ceil(R_i^LO / T_j) * C_j(LO)

- HI-mode (mode switch inside the busy period), HI tasks only::

      R_i^HI = C_i(HI) + sum_{j in hpH(i)} ceil(R_i^HI / T_j) * C_j(HI)
                       + sum_{k in hpL(i)} ceil(R_i^LO / T_k) * C_k(LO)

where ``hpH``/``hpL`` split the higher-priority tasks by criticality.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.fixed_priority import audsley_assignment
from repro.analysis.tolerance import ceil_div, converged, exceeds
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet

__all__ = [
    "amc_rtb_response_times",
    "amc_rtb_schedulable_with_order",
    "amc_rtb_schedulable",
]

_MAX_ITERATIONS = 100_000


def _fixed_point(initial: float, step, bound: float) -> float | None:
    """Iterate ``r = step(r)`` from ``initial`` until convergence or > bound."""
    r = initial
    for _ in range(_MAX_ITERATIONS):
        r_next = step(r)
        if exceeds(r_next, bound):
            return None
        if converged(r_next, r):
            return r_next
        r = r_next
    return None


def amc_rtb_response_times(
    ordered: Sequence[MCTask],
) -> tuple[list[float | None], list[float | None]]:
    """LO- and HI-mode response times for tasks in priority order.

    ``ordered[0]`` has the highest priority.  Returns two parallel lists:
    LO-mode response times for every task, and HI-mode response times for
    HI tasks (``None`` entries for LO tasks, which are abandoned after the
    switch).  An entry is ``None`` when the recurrence exceeds the
    deadline.
    """
    for t in ordered:
        if exceeds(t.deadline, t.period):
            raise ValueError(
                f"AMC-rtb requires constrained deadlines; {t.name} has "
                f"D={t.deadline} > T={t.period}"
            )
    r_lo: list[float | None] = []
    for i, task in enumerate(ordered):
        hp = ordered[:i]

        def step(r: float, task=task, hp=hp) -> float:
            return task.wcet_lo + sum(
                ceil_div(r, j.period) * j.wcet_lo for j in hp
            )

        r_lo.append(_fixed_point(task.wcet_lo, step, task.deadline))

    r_hi: list[float | None] = []
    for i, task in enumerate(ordered):
        if task.criticality is not CriticalityRole.HI:
            r_hi.append(None)
            continue
        if r_lo[i] is None:
            r_hi.append(None)
            continue
        hp_hi = [j for j in ordered[:i] if j.criticality is CriticalityRole.HI]
        hp_lo = [j for j in ordered[:i] if j.criticality is CriticalityRole.LO]
        lo_interference = sum(
            ceil_div(r_lo[i], k.period) * k.wcet_lo for k in hp_lo
        )

        def step(r: float, task=task, hp_hi=hp_hi, lo=lo_interference) -> float:
            return (
                task.wcet_hi
                + sum(ceil_div(r, j.period) * j.wcet_hi for j in hp_hi)
                + lo
            )

        r_hi.append(_fixed_point(task.wcet_hi, step, task.deadline))
    return r_lo, r_hi


def amc_rtb_schedulable_with_order(ordered: Sequence[MCTask]) -> bool:
    """AMC-rtb feasibility for a *given* priority order."""
    r_lo, r_hi = amc_rtb_response_times(ordered)
    for task, lo, hi in zip(ordered, r_lo, r_hi):
        if lo is None:
            return False
        if task.criticality is CriticalityRole.HI and hi is None:
            return False
    return True


def _feasible_at_lowest(candidate: MCTask, others: Sequence[MCTask]) -> bool:
    """Audsley priority-level test: ``candidate`` at the lowest priority.

    AMC-rtb is OPA-compatible [Baruah/Burns/Davis]: a task's response-time
    bounds depend only on the *set* of higher-priority tasks, not their
    relative order, so Audsley's algorithm applies.
    """
    ordered = list(others) + [candidate]
    r_lo, r_hi = amc_rtb_response_times(ordered)
    if r_lo[-1] is None:
        return False
    if candidate.criticality is CriticalityRole.HI and r_hi[-1] is None:
        return False
    return True


def amc_rtb_schedulable(mc: MCTaskSet) -> bool:
    """AMC-rtb feasibility with Audsley's optimal priority assignment."""
    assignment = audsley_assignment(list(mc), _feasible_at_lowest)
    return assignment is not None
