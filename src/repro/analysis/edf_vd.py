"""EDF-VD schedulability analysis [Baruah et al., ECRTS 2012].

EDF-VD (EDF with Virtual Deadlines) is the mixed-criticality scheduler the
paper instantiates FT-S with (Appendix B.0.1).  It is a two-mode scheduler
for implicit-deadline dual-criticality task sets:

- in LO mode all tasks are scheduled by EDF, but HI tasks use *virtual*
  deadlines ``x * T_i`` shortened by a factor ``x <= 1``;
- when any HI job exceeds its LO-criticality budget ``C_i(LO)``, the
  system switches to HI mode: LO tasks are killed and HI tasks revert to
  their real deadlines.

The sufficient test used by the paper (eq. 10) is::

    max( U_HI^LO + U_LO^LO,
         U_HI^HI + U_HI^LO / (1 - U_LO^LO) * U_LO^LO ) <= 1

with the virtual-deadline factor ``x = U_HI^LO / (1 - U_LO^LO)``.

This module evaluates the test, the associated ``U_MC`` load metric used
by Fig. 1, and the runtime parameter ``x`` consumed by the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.tolerance import utilization_exceeds
from repro.model.mc_task import MCTaskSet

__all__ = ["EDFVDAnalysis", "edf_vd_utilization", "edf_vd_schedulable", "edf_vd_x"]


@dataclass(frozen=True)
class EDFVDAnalysis:
    """Result of the EDF-VD test on one MC task set."""

    u_hi_lo: float
    u_hi_hi: float
    u_lo_lo: float
    #: The left operand of eq. (10): LO-mode EDF load.
    lo_mode_load: float
    #: The right operand of eq. (10): HI-mode load with carried-over LO work.
    hi_mode_load: float
    #: ``U_MC``: the paper's mixed-criticality utilization metric
    #: (max of the two loads, line 11 of Algorithm 2).
    u_mc: float
    #: Virtual-deadline shrink factor ``x``; ``None`` when undefined
    #: (``U_LO^LO >= 1``).
    x: float | None

    @property
    def schedulable(self) -> bool:
        """Whether eq. (10) holds: ``U_MC <= 1``."""
        return not utilization_exceeds(self.u_mc)


def analyse(mc: MCTaskSet) -> EDFVDAnalysis:
    """Run the EDF-VD utilization test (eq. 10) on ``mc``.

    Requires an implicit-deadline task set — EDF-VD's test is formulated
    for ``D_i = T_i`` only.
    """
    if not mc.is_implicit_deadline:
        raise ValueError("EDF-VD analysis requires implicit deadlines")
    u_hi_lo = mc.u_hi_lo
    u_hi_hi = mc.u_hi_hi
    u_lo_lo = mc.u_lo_lo
    lo_mode = u_hi_lo + u_lo_lo
    if u_lo_lo >= 1.0:
        # lambda's denominator vanishes: HI-mode load is unbounded.
        x = None
        hi_mode = math.inf
    else:
        x = u_hi_lo / (1.0 - u_lo_lo)
        hi_mode = u_hi_hi + x * u_lo_lo
    return EDFVDAnalysis(
        u_hi_lo=u_hi_lo,
        u_hi_hi=u_hi_hi,
        u_lo_lo=u_lo_lo,
        lo_mode_load=lo_mode,
        hi_mode_load=hi_mode,
        u_mc=max(lo_mode, hi_mode),
        x=x,
    )


def edf_vd_utilization(mc: MCTaskSet) -> float:
    """``U_MC`` of the task set under EDF-VD (Algorithm 2, line 11)."""
    return analyse(mc).u_mc


def edf_vd_schedulable(mc: MCTaskSet) -> bool:
    """Whether ``mc`` passes the EDF-VD test of eq. (10)."""
    return analyse(mc).schedulable


def edf_vd_x(mc: MCTaskSet) -> float | None:
    """The virtual-deadline factor ``x`` for a schedulable set.

    Returns ``None`` when the test fails or the factor is undefined.  When
    ``U_HI^LO + U_LO^LO <= 1`` already holds with ``x = 1`` (plain EDF is
    enough in LO mode), the factor is still the canonical
    ``U_HI^LO / (1 - U_LO^LO)`` clamped to at most 1.
    """
    result = analyse(mc)
    if not result.schedulable or result.x is None:
        return None
    return min(result.x, 1.0)
