"""AMC-max: the precise adaptive mixed-criticality response-time test.

The second analysis of Baruah/Burns/Davis, *"Response Time Analysis for
Mixed Criticality Systems"* (RTSS 2011).  Where AMC-rtb
(:mod:`repro.analysis.amc`) bounds the LO-task interference on a HI task
by freezing it at the LO-mode response time, AMC-max enumerates the
possible mode-switch instants ``s`` inside the busy period and maximises
over them, which is strictly less pessimistic:

For a HI task ``tau_i`` and a switch at ``s``:

    ``R_i(s) = C_i(HI) + IL(s) + IH(s, R_i(s))``

- LO interference stops at the switch:
  ``IL(s) = sum_{k in hpL(i)} (floor(s / T_k) + 1) * C_k(LO)``;
- HI interference splits jobs into those that may still run after the
  switch (HI budget) and the rest (LO budget):

  ``M_j(s, t) = min( ceil((t - s - (T_j - D_j)) / T_j) + 1, ceil(t / T_j) )``
  ``IH_j = M_j * C_j(HI) + (ceil(t / T_j) - M_j) * C_j(LO)``

The HI-mode response time is the maximum of the fixed points over the
candidate switch instants — the releases of higher-priority LO tasks
within the LO-mode response time (plus ``s = 0``).

AMC-max dominates AMC-rtb (accepts every task set AMC-rtb accepts); the
property suite checks this on random converted sets.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.amc import amc_rtb_response_times
from repro.analysis.fixed_priority import audsley_assignment
from repro.analysis.tolerance import (
    ceil_div,
    converged,
    exceeds,
    floor_div,
    strictly_below,
)
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet

__all__ = [
    "amc_max_response_times",
    "amc_max_schedulable_with_order",
    "amc_max_schedulable",
]

_MAX_ITERATIONS = 100_000


def _hi_interference(
    hp_hi: Sequence[MCTask], s: float, t: float
) -> float:
    """``sum_j IH_j(s, t)`` of the AMC-max recurrence."""
    total = 0.0
    for j in hp_hi:
        jobs = ceil_div(t, j.period)
        after_switch = ceil_div(t - s - (j.period - j.deadline), j.period) + 1
        m = min(max(after_switch, 0), jobs)
        total += m * j.wcet_hi + (jobs - m) * j.wcet_lo
    return total


def _response_at_switch(
    task: MCTask,
    hp_hi: Sequence[MCTask],
    lo_interference: float,
    deadline: float,
    s: float,
) -> float | None:
    """Fixed point of ``R = C(HI) + IL(s) + IH(s, R)``."""
    r = task.wcet_hi + lo_interference
    for _ in range(_MAX_ITERATIONS):
        r_next = task.wcet_hi + lo_interference + _hi_interference(hp_hi, s, r)
        if exceeds(r_next, deadline):
            return None
        if converged(r_next, r):
            return r_next
        r = r_next
    return None


def amc_max_response_times(
    ordered: Sequence[MCTask],
) -> tuple[list[float | None], list[float | None]]:
    """LO-mode and AMC-max HI-mode response times, highest priority first.

    The LO-mode pass is shared with AMC-rtb.  HI-mode entries exist for HI
    tasks only and are ``None`` when some switch instant drives the
    response time past the deadline.
    """
    r_lo, _ = amc_rtb_response_times(ordered)
    r_hi: list[float | None] = []
    for i, task in enumerate(ordered):
        if task.criticality is not CriticalityRole.HI or r_lo[i] is None:
            r_hi.append(None)
            continue
        hp = ordered[:i]
        hp_hi = [j for j in hp if j.criticality is CriticalityRole.HI]
        hp_lo = [j for j in hp if j.criticality is CriticalityRole.LO]

        # Candidate switch instants: LO releases inside the LO-mode busy
        # period (IL only changes there), plus the period start.
        candidates = {0.0}
        for k in hp_lo:
            m = 0
            while strictly_below(m * k.period, r_lo[i]):
                candidates.add(m * k.period)
                m += 1

        worst: float | None = 0.0
        for s in sorted(candidates):
            lo_interference = sum(
                (floor_div(s, k.period) + 1) * k.wcet_lo
                for k in hp_lo
            )
            r = _response_at_switch(
                task, hp_hi, lo_interference, task.deadline, s
            )
            if r is None:
                worst = None
                break
            if worst is not None:
                worst = max(worst, r)
        r_hi.append(worst)
    return r_lo, r_hi


def amc_max_schedulable_with_order(ordered: Sequence[MCTask]) -> bool:
    """AMC-max feasibility for a given priority order."""
    r_lo, r_hi = amc_max_response_times(ordered)
    for task, lo, hi in zip(ordered, r_lo, r_hi):
        if lo is None:
            return False
        if task.criticality is CriticalityRole.HI and hi is None:
            return False
    return True


def _feasible_at_lowest(candidate: MCTask, others: Sequence[MCTask]) -> bool:
    ordered = list(others) + [candidate]
    r_lo, r_hi = amc_max_response_times(ordered)
    if r_lo[-1] is None:
        return False
    if candidate.criticality is CriticalityRole.HI and r_hi[-1] is None:
        return False
    return True


def amc_max_schedulable(mc: MCTaskSet) -> bool:
    """AMC-max feasibility under Audsley's optimal priority assignment."""
    return audsley_assignment(list(mc), _feasible_at_lowest) is not None
