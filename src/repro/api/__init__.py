"""``repro.api`` — the stable public facade over the toolchain.

Library callers and the ``ftmc serve`` HTTP front-end share one typed
surface: request/response dataclasses (:mod:`repro.api.types`), the
:class:`~repro.api.service.AnalysisService` that executes them, and the
:class:`~repro.api.server.ApiServer` that exposes the service over
HTTP/JSON.  The facade is the supported integration point — the modules
underneath (:mod:`repro.analysis`, :mod:`repro.core`,
:mod:`repro.safety`) may reshape between releases; these types aim not
to.

In-process use::

    from repro.api import AnalysisService, ScheduleRequest
    from repro.io import load_taskset

    service = AnalysisService()
    request = ScheduleRequest(taskset=load_taskset("system.json"),
                              backend="edf-vd")
    response = service.schedule(request)

Over HTTP, the same request is the JSON body of ``POST /v1/schedule``
with the task set embedded in the ``ftmc analyze`` document format.
"""

from repro.api.batching import DbfMicroBatcher
from repro.api.server import ApiServer
from repro.api.service import AnalysisService, backend_catalog, make_backend
from repro.api.types import (
    API_SCHEMA,
    AnalyzeRequest,
    AnalyzeResponse,
    ApiError,
    DbfRequest,
    DbfResponse,
    PFHRequest,
    PFHResponse,
    PlanRequest,
    PlanResponse,
    ScheduleRequest,
    ScheduleResponse,
    SchedulabilityRequest,
    SchedulabilityResponse,
)

__all__ = [
    "API_SCHEMA",
    "AnalysisService",
    "ApiError",
    "ApiServer",
    "AnalyzeRequest",
    "AnalyzeResponse",
    "DbfMicroBatcher",
    "DbfRequest",
    "DbfResponse",
    "PFHRequest",
    "PFHResponse",
    "PlanRequest",
    "PlanResponse",
    "ScheduleRequest",
    "ScheduleResponse",
    "SchedulabilityRequest",
    "SchedulabilityResponse",
    "backend_catalog",
    "make_backend",
]
