"""Micro-batching of concurrent ``dbf`` point queries.

A resident ``ftmc serve`` process often fields many simultaneous
``POST /v1/dbf`` requests against the *same* workload (dashboards
sampling a demand curve, sweep clients splitting instants across
connections).  Evaluating each request alone calls
:func:`repro.analysis.kernels.dbf_batch` with a short instants vector,
paying the kernel's fixed setup (array marshalling, chunk loop entry)
once per request.  The :class:`DbfMicroBatcher` coalesces requests that
arrive within a small window *and share a workload* into one kernel call
over the concatenated instants, then scatters the demand slices back.

Correctness is unaffected: ``dbf_batch`` is elementwise in ``instants``,
so a member's slice of the batched result equals its solo result
exactly.  Under the scalar tier (``REPRO_NO_NUMPY``) batching is
bypassed — the scalar reference path has no per-call setup worth
amortising — and any member that times out waiting for its leader falls
back to computing alone, so the batcher can delay a response but never
lose one.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro.analysis import kernels
from repro.analysis.edf import Workload, demand_bound_function
from repro.obs import metrics as obs_metrics

__all__ = ["DbfMicroBatcher", "DEFAULT_WINDOW_S"]

#: How long the first arrival (the *leader*) holds the batch open for
#: followers, in seconds.  Kept well under typical request latency so a
#: solo request's added latency stays negligible.
DEFAULT_WINDOW_S = 0.002

#: Safety valve: a follower waits at most this long for its leader's
#: result before computing alone.
_FOLLOWER_TIMEOUT_S = 2.0


class _Batch:
    """One open batch: a workload key, its members, and their results."""

    def __init__(self, workload: tuple[Workload, ...]) -> None:
        self.workload = workload
        self.instants: list[float] = []
        self.slices: list[tuple[int, int]] = []
        self.results: list[tuple[float, ...]] | None = None
        self.done = threading.Event()

    def join(self, instants: Sequence[float]) -> int:
        """Append a member's instants; returns its member index."""
        start = len(self.instants)
        self.instants.extend(instants)
        self.slices.append((start, len(self.instants)))
        return len(self.slices) - 1


class DbfMicroBatcher:
    """Coalesce concurrent same-workload ``dbf`` queries into one kernel call.

    Thread-safe; one instance is shared by every request handler thread
    of an :class:`~repro.api.server.ApiServer`.  ``evaluate`` is also
    correct (just unbatched) when called from a single thread, so the
    in-process facade uses the same entry point.
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S) -> None:
        if window_s < 0:
            raise ValueError(f"window must be non-negative, got {window_s}")
        self._window_s = window_s
        self._lock = threading.Lock()
        self._open: dict[tuple[Workload, ...], _Batch] = {}

    def evaluate(
        self, workload: tuple[Workload, ...], instants: Sequence[float]
    ) -> tuple[float, ...]:
        """``dbf(t)`` for each ``t`` in ``instants`` over ``workload``."""
        if not kernels.numpy_enabled() or self._window_s == 0.0:
            return self._compute(workload, tuple(instants))
        with self._lock:
            batch = self._open.get(workload)
            if batch is None:
                batch = _Batch(workload)
                self._open[workload] = batch
                leader = True
            else:
                leader = False
            member = batch.join(instants)
        if leader:
            # Hold the window open for followers, then close and compute.
            return self._lead(batch)[member]
        if batch.done.wait(_FOLLOWER_TIMEOUT_S) and batch.results is not None:
            obs_metrics.inc("api.dbf.coalesced")
            return batch.results[member]
        # Leader died (thread killed, kernel raised) — compute alone.
        obs_metrics.inc("api.dbf.fallbacks")
        return self._compute(workload, tuple(instants))

    def _lead(self, batch: _Batch) -> list[tuple[float, ...]]:
        batch.done.wait(self._window_s)  # nobody sets it; pure sleep
        with self._lock:
            # Closing the batch: later arrivals start a fresh one.
            if self._open.get(batch.workload) is batch:
                del self._open[batch.workload]
        try:
            demands = self._compute(batch.workload, tuple(batch.instants))
            batch.results = [
                demands[start:stop] for start, stop in batch.slices
            ]
            obs_metrics.inc("api.dbf.batches")
            obs_metrics.observe("api.dbf.batch_members", len(batch.slices))
            return batch.results
        finally:
            batch.done.set()

    @staticmethod
    def _compute(
        workload: tuple[Workload, ...], instants: tuple[float, ...]
    ) -> tuple[float, ...]:
        """One kernel (or scalar-reference) evaluation of the demands."""
        if kernels.numpy_enabled():
            np = kernels.np
            assert np is not None  # numpy_enabled() implies the import worked
            arrays = kernels.workload_arrays(workload)
            demands = kernels.dbf_batch(
                *arrays, np.asarray(instants, dtype=float)
            )
            return tuple(float(d) for d in demands)
        return tuple(
            demand_bound_function(workload, t) for t in instants
        )
