"""The :class:`AnalysisService`: one object answering every facade operation.

Each public method takes a typed request from :mod:`repro.api.types` and
returns the matching typed response; bad inputs surface as
:class:`~repro.api.types.ApiError`.  The service owns no mutable state
of its own — its value in a resident process is what it keeps *warm*:
the shared schedulability verdict memo
(:func:`repro.core.backends.schedulability_cache_info`), the
re-execution profile memo of :mod:`repro.core.profiles`, and a
:class:`~repro.api.batching.DbfMicroBatcher` coalescing concurrent
demand queries.  Every operation runs inside a ``repro.obs`` span
(``api.<op>``) with per-endpoint request/error counters and a latency
histogram, so ``ftmc serve --trace`` produces a stream ``ftmc stats``
can aggregate.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.analysis import kernels
from repro.core import backends as core_backends
from repro.core.conversion import convert_uniform
from repro.core.ftmc import ft_schedule
from repro.model.criticality import CriticalityRole
from repro.model.faults import ReexecutionProfile
from repro.core.profiles import pfh_lo_adapted
from repro.multicore.ftmp import ft_schedule_partitioned
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.planner import PlanOptions
from repro.report import analyse_system, render_report
from repro.safety.pfh import pfh_plain

from repro.api.batching import DbfMicroBatcher
from repro.api.types import (
    AnalyzeRequest,
    AnalyzeResponse,
    ApiError,
    DbfRequest,
    DbfResponse,
    PFHRequest,
    PFHResponse,
    PlanRequest,
    PlanResponse,
    ScheduleRequest,
    ScheduleResponse,
    SchedulabilityRequest,
    SchedulabilityResponse,
)

__all__ = ["AnalysisService", "backend_catalog", "make_backend"]

R = TypeVar("R")

#: Default ``df`` when a degrade backend is requested without one; matches
#: the ``ftmc analyze`` default (re-exported from the core registry).
DEFAULT_DEGRADATION_FACTOR = core_backends.DEFAULT_DEGRADATION_FACTOR


def backend_catalog() -> list[dict[str, str]]:
    """The selectable backends, as JSON-ready rows (``GET /v1/backends``)."""
    rows = []
    for name in core_backends.backend_names():
        instance = core_backends.make_backend(name)
        rows.append({"name": name, "mechanism": instance.mechanism})
    return rows


def make_backend(
    name: str, degradation_factor: float | None = None
) -> core_backends.SchedulerBackend:
    """Instantiate a backend by its registry name.

    The structured-error face of
    :func:`repro.core.backends.make_backend`: unknown names map to a 400
    with code ``unknown-backend``, invalid parameters (including a
    degradation factor on a kill backend) to ``invalid-request``.
    """
    if name not in core_backends.backend_names():
        raise ApiError.bad_request(
            "unknown-backend",
            f"unknown backend {name!r}; one of: "
            f"{', '.join(core_backends.backend_names())}",
        )
    try:
        return core_backends.make_backend(name, degradation_factor)
    except ValueError as exc:
        raise ApiError.bad_request("invalid-request", str(exc)) from None


class AnalysisService:
    """Facade over :mod:`repro.analysis`, :mod:`repro.core`, :mod:`repro.safety`."""

    def __init__(self, batch_window_s: float | None = None) -> None:
        self._batcher = (
            DbfMicroBatcher() if batch_window_s is None
            else DbfMicroBatcher(batch_window_s)
        )

    # -- instrumentation -------------------------------------------------------

    def _run(self, op: str, fn: Callable[[], R]) -> R:
        """Execute one operation inside its span + counters + latency timer."""
        obs_metrics.inc("api.requests")
        obs_metrics.inc(f"api.requests.{op}")
        with span(f"api.{op}"):
            try:
                with obs_metrics.timer(f"api.latency_ns.{op}"):
                    return fn()
            except ApiError:
                obs_metrics.inc(f"api.errors.{op}")
                raise

    # -- operations ------------------------------------------------------------

    def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        """FT-S (Algorithm 1): search safe + schedulable profiles."""
        return self._run("schedule", lambda: self._schedule(request))

    def _schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        backend = make_backend(request.backend, request.degradation_factor)
        try:
            result = ft_schedule(
                request.taskset,
                backend,
                operation_hours=request.operation_hours,
                max_n=request.max_n,
            )
        except ValueError as exc:
            raise ApiError.bad_request("invalid-request", str(exc)) from None
        return ScheduleResponse.from_result(result)

    def schedulability(
        self, request: SchedulabilityRequest
    ) -> SchedulabilityResponse:
        """One backend verdict on ``Gamma(n_HI, n_LO, n'_HI)`` (Lemma 4.1)."""
        return self._run("schedulability", lambda: self._schedulability(request))

    def _schedulability(
        self, request: SchedulabilityRequest
    ) -> SchedulabilityResponse:
        backend = make_backend(request.backend, request.degradation_factor)
        try:
            converted = convert_uniform(
                request.taskset, request.n_hi, request.n_lo, request.n_prime_hi
            )
            verdict = backend.is_schedulable_cached(converted)
        except ValueError as exc:
            raise ApiError.bad_request("invalid-request", str(exc)) from None
        return SchedulabilityResponse(
            schedulable=verdict,
            backend=request.backend,
            mechanism=backend.mechanism,
            kernel_tier=kernels.kernel_tier(),
        )

    def pfh(self, request: PFHRequest) -> PFHResponse:
        """PFH bounds at the given profiles (eqs. 2, 5, 7)."""
        return self._run("pfh", lambda: self._pfh(request))

    def _pfh(self, request: PFHRequest) -> PFHResponse:
        taskset = request.taskset
        try:
            reexecution = ReexecutionProfile.uniform(
                taskset, request.n_hi, request.n_lo
            )
            pfh_hi = pfh_plain(taskset, CriticalityRole.HI, reexecution)
            if request.mechanism == "plain":
                pfh_lo = pfh_plain(taskset, CriticalityRole.LO, reexecution)
            else:
                assert request.adaptation is not None  # enforced by from_dict
                pfh_lo = pfh_lo_adapted(
                    taskset,
                    request.n_hi,
                    request.n_lo,
                    request.adaptation,
                    request.mechanism,
                    request.operation_hours,
                )
        except ValueError as exc:
            raise ApiError.bad_request("invalid-request", str(exc)) from None
        return PFHResponse(
            pfh_hi=pfh_hi,
            pfh_lo=pfh_lo,
            mechanism=request.mechanism,
            n_hi=request.n_hi,
            n_lo=request.n_lo,
            adaptation=request.adaptation,
        )

    def plan(self, request: PlanRequest) -> PlanResponse:
        """FT-MP planning: Algorithm 1 lifted to ``cores`` processors."""
        return self._run("plan", lambda: self._plan(request))

    def _plan(self, request: PlanRequest) -> PlanResponse:
        backend = make_backend(request.backend, request.degradation_factor)
        try:
            result = ft_schedule_partitioned(
                request.taskset,
                request.cores,
                backend,
                operation_hours=request.operation_hours,
                max_n=request.max_n,
                plan_options=PlanOptions(
                    exact=request.exact, max_nodes=request.max_nodes
                ),
            )
        except ValueError as exc:
            raise ApiError.bad_request("invalid-request", str(exc)) from None
        return PlanResponse.from_result(result)

    def dbf(self, request: DbfRequest) -> DbfResponse:
        """Demand bound ``dbf(t)`` at each instant, micro-batched."""
        return self._run("dbf", lambda: self._dbf(request))

    def _dbf(self, request: DbfRequest) -> DbfResponse:
        demands = self._batcher.evaluate(request.workload, request.instants)
        return DbfResponse(demands=demands)

    def analyze(self, request: AnalyzeRequest) -> AnalyzeResponse:
        """The full certification report behind ``ftmc analyze``."""
        return self._run("analyze", lambda: self._analyze(request))

    def _analyze(self, request: AnalyzeRequest) -> AnalyzeResponse:
        try:
            report = analyse_system(
                request.taskset,
                operation_hours=request.operation_hours,
                degradation_factor=request.degradation_factor,
            )
        except ValueError as exc:
            raise ApiError.bad_request("invalid-request", str(exc)) from None
        return AnalyzeResponse(
            feasible=report.feasible,
            recommendation=report.recommendation,
            report=render_report(report),
        )

    # -- diagnostics -----------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Warm-state snapshot for ``GET /v1/stats``."""
        return {
            "schedulability_cache": core_backends.schedulability_cache_info(),
            "kernel_tier": kernels.kernel_tier(),
            "metrics": obs_metrics.registry().snapshot(),
            "metrics_enabled": obs_metrics.enabled(),
        }
