"""Typed request/response contracts for the :mod:`repro.api` facade.

Every operation the service exposes is a pair of frozen dataclasses with
a documented JSON wire shape (``to_dict``/``from_dict``).  The wire
format embeds task sets in the same document format ``ftmc analyze``
reads from disk (:mod:`repro.io`), so a file that works one-shot works
verbatim as a request body — the byte-identical-verdict contract between
``ftmc serve`` and the one-shot CLI starts here.

Error mapping is structural, never a traceback: any malformed input is
converted to an :class:`ApiError` carrying a machine-readable ``code``
and the HTTP status the server should answer with.  ``NaN`` never
crosses the wire — undefined float quantities (``U_MC`` on backends
without one, PFH fields on failure) serialise as ``null`` and
deserialise back to ``math.nan``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.analysis.edf import Workload
from repro.core.ftmc import DEFAULT_OPERATION_HOURS, FTSResult
from repro.io import taskset_from_dict, taskset_to_dict
from repro.model.task import TaskSet
from repro.multicore.ftmp import FTMPResult
from repro.planner import DEFAULT_MAX_NODES
from repro.safety.pfh import DEFAULT_MAX_REEXECUTIONS

__all__ = [
    "API_SCHEMA",
    "ApiError",
    "AnalyzeRequest",
    "AnalyzeResponse",
    "DbfRequest",
    "DbfResponse",
    "PFHRequest",
    "PFHResponse",
    "PlanRequest",
    "PlanResponse",
    "ScheduleRequest",
    "ScheduleResponse",
    "SchedulabilityRequest",
    "SchedulabilityResponse",
    "parse_taskset_field",
]

#: Wire-format identifier answered by ``GET /healthz``.
API_SCHEMA = "ftmc-api/1"

#: Upper bound on list-shaped request payloads (workload items, instants,
#: tasks).  Requests beyond it are rejected 400 rather than letting one
#: caller monopolise a resident server's memory and kernel time.
MAX_REQUEST_ITEMS = 100_000


class ApiError(Exception):
    """A structured, HTTP-mappable request failure.

    ``code`` is a stable machine-readable slug (clients branch on it),
    ``status`` the HTTP status the server answers with, ``message`` the
    human-readable one-liner.  The server renders :meth:`to_dict` as the
    response body — a traceback never reaches the wire.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    @classmethod
    def bad_request(cls, code: str, message: str) -> "ApiError":
        return cls(400, code, message)

    def to_dict(self) -> dict[str, Any]:
        return {
            "error": {
                "status": self.status,
                "code": self.code,
                "message": self.message,
            }
        }


def _float_or_none(value: float) -> float | None:
    """JSON image of a float field: ``NaN``/``inf`` become ``null``."""
    return None if (value != value or math.isinf(value)) else value


def _float_from_wire(value: Any) -> float:
    return math.nan if value is None else float(value)


def _require_mapping(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ApiError.bad_request(
            "invalid-request", f"{what} must be a JSON object"
        )
    return data


def parse_taskset_field(data: Mapping[str, Any]) -> TaskSet:
    """The ``taskset`` field of a request, through the model validators.

    Reuses :func:`repro.io.taskset_from_dict` so requests accept exactly
    the documents ``ftmc analyze``/``ftmc lint`` accept, and rejects
    exactly what they reject — as a structured 400, never a traceback.
    """
    document = data.get("taskset")
    if document is None:
        raise ApiError.bad_request(
            "missing-taskset", "request needs a 'taskset' object"
        )
    _require_mapping(document, "'taskset'")
    if isinstance(document.get("tasks"), list) and (
        len(document["tasks"]) > MAX_REQUEST_ITEMS
    ):
        raise ApiError.bad_request(
            "too-large", f"'tasks' exceeds {MAX_REQUEST_ITEMS} items"
        )
    try:
        return taskset_from_dict(dict(document))
    except Exception as exc:
        # The model constructors raise ValueError/TypeError/LintError with
        # a single-line reason; surface it structurally.
        raise ApiError.bad_request("invalid-taskset", str(exc)) from None


def _parse_float(
    data: Mapping[str, Any], field: str, default: float, positive: bool = True
) -> float:
    raw = data.get(field, default)
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ApiError.bad_request(
            "invalid-request", f"'{field}' must be a number, got {raw!r}"
        ) from None
    if positive and not value > 0:
        raise ApiError.bad_request(
            "invalid-request", f"'{field}' must be positive, got {value!r}"
        )
    return value


def _parse_int(data: Mapping[str, Any], field: str, default: int | None) -> int:
    raw = data.get(field, default)
    if raw is None:
        raise ApiError.bad_request(
            "invalid-request", f"request needs an integer '{field}'"
        )
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ApiError.bad_request(
            "invalid-request", f"'{field}' must be an integer, got {raw!r}"
        )
    if raw < 0:
        raise ApiError.bad_request(
            "invalid-request", f"'{field}' must be non-negative, got {raw}"
        )
    return raw


# -- FT-S profile search -------------------------------------------------------


@dataclass(frozen=True)
class ScheduleRequest:
    """One FT-S (Algorithm 1) run: find safe + schedulable profiles."""

    taskset: TaskSet
    backend: str = "edf-vd"
    degradation_factor: float | None = None
    operation_hours: float = DEFAULT_OPERATION_HOURS
    max_n: int = DEFAULT_MAX_REEXECUTIONS

    @classmethod
    def from_dict(cls, data: Any) -> "ScheduleRequest":
        data = _require_mapping(data, "request body")
        df = data.get("degradation_factor")
        return cls(
            taskset=parse_taskset_field(data),
            backend=str(data.get("backend", "edf-vd")),
            degradation_factor=(
                _parse_float(data, "degradation_factor", 0.0) if df is not None
                else None
            ),
            operation_hours=_parse_float(
                data, "operation_hours", DEFAULT_OPERATION_HOURS
            ),
            max_n=_parse_int(data, "max_n", DEFAULT_MAX_REEXECUTIONS),
        )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "taskset": taskset_to_dict(self.taskset),
            "backend": self.backend,
            "operation_hours": self.operation_hours,
            "max_n": self.max_n,
        }
        if self.degradation_factor is not None:
            payload["degradation_factor"] = self.degradation_factor
        return payload


@dataclass(frozen=True)
class ScheduleResponse:
    """The :class:`~repro.core.ftmc.FTSResult` fields, JSON-shaped."""

    success: bool
    failure: str | None
    backend: str
    mechanism: str
    operation_hours: float
    degradation_factor: float | None
    n_hi: int | None
    n_lo: int | None
    n1_hi: int | None
    n2_hi: int | None
    adaptation: int | None
    pfh_hi: float
    pfh_lo: float
    u_mc: float

    @classmethod
    def from_result(cls, result: FTSResult) -> "ScheduleResponse":
        return cls(
            success=result.success,
            failure=result.failure.name if result.failure is not None else None,
            backend=result.backend_name,
            mechanism=result.mechanism,
            operation_hours=result.operation_hours,
            degradation_factor=result.degradation_factor,
            n_hi=result.n_hi,
            n_lo=result.n_lo,
            n1_hi=result.n1_hi,
            n2_hi=result.n2_hi,
            adaptation=result.adaptation,
            pfh_hi=result.pfh_hi,
            pfh_lo=result.pfh_lo,
            u_mc=result.u_mc,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "success": self.success,
            "failure": self.failure,
            "backend": self.backend,
            "mechanism": self.mechanism,
            "operation_hours": self.operation_hours,
            "degradation_factor": self.degradation_factor,
            "n_hi": self.n_hi,
            "n_lo": self.n_lo,
            "n1_hi": self.n1_hi,
            "n2_hi": self.n2_hi,
            "adaptation": self.adaptation,
            "pfh_hi": _float_or_none(self.pfh_hi),
            "pfh_lo": _float_or_none(self.pfh_lo),
            "u_mc": _float_or_none(self.u_mc),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScheduleResponse":
        return cls(
            success=bool(data["success"]),
            failure=data.get("failure"),
            backend=str(data["backend"]),
            mechanism=str(data["mechanism"]),
            operation_hours=float(data["operation_hours"]),
            degradation_factor=(
                None if data.get("degradation_factor") is None
                else float(data["degradation_factor"])
            ),
            n_hi=data.get("n_hi"),
            n_lo=data.get("n_lo"),
            n1_hi=data.get("n1_hi"),
            n2_hi=data.get("n2_hi"),
            adaptation=data.get("adaptation"),
            pfh_hi=_float_from_wire(data.get("pfh_hi")),
            pfh_lo=_float_from_wire(data.get("pfh_lo")),
            u_mc=_float_from_wire(data.get("u_mc")),
        )


# -- single schedulability verdict ---------------------------------------------


@dataclass(frozen=True)
class SchedulabilityRequest:
    """One backend verdict on the Lemma 4.1 conversion ``Gamma(n, n')``."""

    taskset: TaskSet
    backend: str = "edf-vd"
    degradation_factor: float | None = None
    n_hi: int = 1
    n_lo: int = 1
    n_prime_hi: int = 1

    @classmethod
    def from_dict(cls, data: Any) -> "SchedulabilityRequest":
        data = _require_mapping(data, "request body")
        df = data.get("degradation_factor")
        return cls(
            taskset=parse_taskset_field(data),
            backend=str(data.get("backend", "edf-vd")),
            degradation_factor=(
                _parse_float(data, "degradation_factor", 0.0) if df is not None
                else None
            ),
            n_hi=_parse_int(data, "n_hi", 1),
            n_lo=_parse_int(data, "n_lo", 1),
            n_prime_hi=_parse_int(data, "n_prime_hi", 1),
        )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "taskset": taskset_to_dict(self.taskset),
            "backend": self.backend,
            "n_hi": self.n_hi,
            "n_lo": self.n_lo,
            "n_prime_hi": self.n_prime_hi,
        }
        if self.degradation_factor is not None:
            payload["degradation_factor"] = self.degradation_factor
        return payload


@dataclass(frozen=True)
class SchedulabilityResponse:
    schedulable: bool
    backend: str
    mechanism: str
    kernel_tier: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "schedulable": self.schedulable,
            "backend": self.backend,
            "mechanism": self.mechanism,
            "kernel_tier": self.kernel_tier,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchedulabilityResponse":
        return cls(
            schedulable=bool(data["schedulable"]),
            backend=str(data["backend"]),
            mechanism=str(data["mechanism"]),
            kernel_tier=str(data["kernel_tier"]),
        )


# -- PFH bounds ----------------------------------------------------------------


@dataclass(frozen=True)
class PFHRequest:
    """Safety quantification at given profiles (eqs. 2, 5 and 7).

    ``mechanism`` selects the LO-level bound: ``"plain"`` (eq. 2, no
    adaptation), ``"kill"`` (eq. 5) or ``"degrade"`` (eq. 7); the HI
    level is always eq. 2.  ``adaptation`` (``n'_HI``) is required for
    kill/degrade and ignored for plain.
    """

    taskset: TaskSet
    n_hi: int
    n_lo: int
    mechanism: str = "plain"
    adaptation: int | None = None
    operation_hours: float = DEFAULT_OPERATION_HOURS

    @classmethod
    def from_dict(cls, data: Any) -> "PFHRequest":
        data = _require_mapping(data, "request body")
        mechanism = str(data.get("mechanism", "plain"))
        if mechanism not in ("plain", "kill", "degrade"):
            raise ApiError.bad_request(
                "invalid-request",
                "'mechanism' must be 'plain', 'kill' or 'degrade', "
                f"got {mechanism!r}",
            )
        adaptation: int | None = None
        if mechanism != "plain":
            adaptation = _parse_int(data, "adaptation", None)
        return cls(
            taskset=parse_taskset_field(data),
            n_hi=_parse_int(data, "n_hi", None),
            n_lo=_parse_int(data, "n_lo", None),
            mechanism=mechanism,
            adaptation=adaptation,
            operation_hours=_parse_float(
                data, "operation_hours", DEFAULT_OPERATION_HOURS
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "taskset": taskset_to_dict(self.taskset),
            "n_hi": self.n_hi,
            "n_lo": self.n_lo,
            "mechanism": self.mechanism,
            "operation_hours": self.operation_hours,
        }
        if self.adaptation is not None:
            payload["adaptation"] = self.adaptation
        return payload


@dataclass(frozen=True)
class PFHResponse:
    pfh_hi: float
    pfh_lo: float
    mechanism: str
    n_hi: int
    n_lo: int
    adaptation: int | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "pfh_hi": _float_or_none(self.pfh_hi),
            "pfh_lo": _float_or_none(self.pfh_lo),
            "mechanism": self.mechanism,
            "n_hi": self.n_hi,
            "n_lo": self.n_lo,
            "adaptation": self.adaptation,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PFHResponse":
        return cls(
            pfh_hi=_float_from_wire(data.get("pfh_hi")),
            pfh_lo=_float_from_wire(data.get("pfh_lo")),
            mechanism=str(data["mechanism"]),
            n_hi=int(data["n_hi"]),
            n_lo=int(data["n_lo"]),
            adaptation=data.get("adaptation"),
        )


# -- partitioned multicore planning --------------------------------------------


def _parse_bool(data: Mapping[str, Any], field: str, default: bool) -> bool:
    raw = data.get(field, default)
    if not isinstance(raw, bool):
        raise ApiError.bad_request(
            "invalid-request", f"'{field}' must be a boolean, got {raw!r}"
        )
    return raw


@dataclass(frozen=True)
class PlanRequest:
    """One FT-MP planning run: Algorithm 1 lifted to ``cores`` processors.

    ``exact=False`` restricts planning to the heuristic portfolio (the
    verdict can then be inconclusive but never proven infeasible);
    ``max_nodes`` budgets the branch-and-bound search.
    """

    taskset: TaskSet
    cores: int
    backend: str = "edf-vd"
    degradation_factor: float | None = None
    operation_hours: float = DEFAULT_OPERATION_HOURS
    max_n: int = DEFAULT_MAX_REEXECUTIONS
    exact: bool = True
    max_nodes: int = DEFAULT_MAX_NODES

    @classmethod
    def from_dict(cls, data: Any) -> "PlanRequest":
        data = _require_mapping(data, "request body")
        df = data.get("degradation_factor")
        cores = _parse_int(data, "cores", None)
        if cores < 1:
            raise ApiError.bad_request(
                "invalid-request", f"'cores' must be >= 1, got {cores}"
            )
        max_nodes = _parse_int(data, "max_nodes", DEFAULT_MAX_NODES)
        if max_nodes < 1:
            raise ApiError.bad_request(
                "invalid-request", f"'max_nodes' must be >= 1, got {max_nodes}"
            )
        return cls(
            taskset=parse_taskset_field(data),
            cores=cores,
            backend=str(data.get("backend", "edf-vd")),
            degradation_factor=(
                _parse_float(data, "degradation_factor", 0.0) if df is not None
                else None
            ),
            operation_hours=_parse_float(
                data, "operation_hours", DEFAULT_OPERATION_HOURS
            ),
            max_n=_parse_int(data, "max_n", DEFAULT_MAX_REEXECUTIONS),
            exact=_parse_bool(data, "exact", True),
            max_nodes=max_nodes,
        )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "taskset": taskset_to_dict(self.taskset),
            "cores": self.cores,
            "backend": self.backend,
            "operation_hours": self.operation_hours,
            "max_n": self.max_n,
            "exact": self.exact,
            "max_nodes": self.max_nodes,
        }
        if self.degradation_factor is not None:
            payload["degradation_factor"] = self.degradation_factor
        return payload


@dataclass(frozen=True)
class PlanResponse:
    """The :class:`~repro.multicore.ftmp.FTMPResult` fields, JSON-shaped.

    ``partition`` is the proof object — per-core lists of task names of
    the converted set at the adopted adaptation profile (``null`` when
    no partition was found).  ``inconclusive`` is True when some
    rejection along the profile scan was heuristic-only, so the reported
    ``n2``/verdict may be pessimistic.  The ``heuristic_objective`` /
    ``exact_objective`` pair (``null`` when undefined) reports the
    heuristic-vs-optimal makespan gap of the adopted plan.
    """

    success: bool
    failure: str | None
    cores: int
    backend: str
    mechanism: str
    operation_hours: float
    inconclusive: bool
    n_hi: int | None
    n_lo: int | None
    n1_hi: int | None
    n2_hi: int | None
    adaptation: int | None
    partition: tuple[tuple[str, ...], ...] | None
    strategy: str | None
    heuristic_objective: float
    exact_objective: float
    gap: float | None
    exact_nodes: int
    exact_complete: bool
    pfh_hi: float
    pfh_lo: float

    @classmethod
    def from_result(cls, result: FTMPResult) -> "PlanResponse":
        plan = result.plan
        return cls(
            success=result.success,
            failure=result.failure.name if result.failure is not None else None,
            cores=result.m,
            backend=result.backend_name,
            mechanism=result.mechanism,
            operation_hours=result.operation_hours,
            inconclusive=result.inconclusive,
            n_hi=result.n_hi,
            n_lo=result.n_lo,
            n1_hi=result.n1_hi,
            n2_hi=result.n2_hi,
            adaptation=result.adaptation,
            partition=(
                result.partition.task_names()
                if result.partition is not None else None
            ),
            strategy=plan.strategy if plan is not None else None,
            heuristic_objective=(
                plan.heuristic_objective if plan is not None else math.inf
            ),
            exact_objective=(
                plan.exact_objective if plan is not None else math.inf
            ),
            gap=plan.gap if plan is not None else None,
            exact_nodes=plan.exact_nodes if plan is not None else 0,
            exact_complete=plan.exact_complete if plan is not None else False,
            pfh_hi=result.pfh_hi,
            pfh_lo=result.pfh_lo,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "success": self.success,
            "failure": self.failure,
            "cores": self.cores,
            "backend": self.backend,
            "mechanism": self.mechanism,
            "operation_hours": self.operation_hours,
            "inconclusive": self.inconclusive,
            "n_hi": self.n_hi,
            "n_lo": self.n_lo,
            "n1_hi": self.n1_hi,
            "n2_hi": self.n2_hi,
            "adaptation": self.adaptation,
            "partition": (
                [list(core) for core in self.partition]
                if self.partition is not None else None
            ),
            "strategy": self.strategy,
            "heuristic_objective": _float_or_none(self.heuristic_objective),
            "exact_objective": _float_or_none(self.exact_objective),
            "gap": self.gap,
            "exact_nodes": self.exact_nodes,
            "exact_complete": self.exact_complete,
            "pfh_hi": _float_or_none(self.pfh_hi),
            "pfh_lo": _float_or_none(self.pfh_lo),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanResponse":
        raw_partition = data.get("partition")
        return cls(
            success=bool(data["success"]),
            failure=data.get("failure"),
            cores=int(data["cores"]),
            backend=str(data["backend"]),
            mechanism=str(data["mechanism"]),
            operation_hours=float(data["operation_hours"]),
            inconclusive=bool(data["inconclusive"]),
            n_hi=data.get("n_hi"),
            n_lo=data.get("n_lo"),
            n1_hi=data.get("n1_hi"),
            n2_hi=data.get("n2_hi"),
            adaptation=data.get("adaptation"),
            partition=(
                tuple(tuple(str(name) for name in core)
                      for core in raw_partition)
                if raw_partition is not None else None
            ),
            strategy=data.get("strategy"),
            heuristic_objective=(
                math.inf if data.get("heuristic_objective") is None
                else float(data["heuristic_objective"])
            ),
            exact_objective=(
                math.inf if data.get("exact_objective") is None
                else float(data["exact_objective"])
            ),
            gap=data.get("gap"),
            exact_nodes=int(data.get("exact_nodes", 0)),
            exact_complete=bool(data.get("exact_complete", False)),
            pfh_hi=_float_from_wire(data.get("pfh_hi")),
            pfh_lo=_float_from_wire(data.get("pfh_lo")),
        )


# -- batched demand-bound evaluation -------------------------------------------


@dataclass(frozen=True)
class DbfRequest:
    """``dbf(t)`` at many deadline points for one workload.

    Concurrent requests sharing a workload are micro-batched into single
    :func:`repro.analysis.kernels.dbf_batch` kernel calls by the service
    (:mod:`repro.api.batching`); results are identical either way.
    """

    workload: tuple[Workload, ...]
    instants: tuple[float, ...]

    @classmethod
    def from_dict(cls, data: Any) -> "DbfRequest":
        data = _require_mapping(data, "request body")
        raw_items = data.get("workload")
        if not isinstance(raw_items, list) or not raw_items:
            raise ApiError.bad_request(
                "invalid-request", "request needs a non-empty 'workload' list"
            )
        raw_instants = data.get("instants")
        if not isinstance(raw_instants, list) or not raw_instants:
            raise ApiError.bad_request(
                "invalid-request", "request needs a non-empty 'instants' list"
            )
        if len(raw_items) > MAX_REQUEST_ITEMS:
            raise ApiError.bad_request(
                "too-large", f"'workload' exceeds {MAX_REQUEST_ITEMS} items"
            )
        if len(raw_instants) > MAX_REQUEST_ITEMS:
            raise ApiError.bad_request(
                "too-large", f"'instants' exceeds {MAX_REQUEST_ITEMS} items"
            )
        items = []
        for i, raw in enumerate(raw_items):
            item = _require_mapping(raw, f"workload item #{i}")
            try:
                items.append(
                    Workload(
                        period=float(item["period"]),
                        deadline=float(item.get("deadline", item["period"])),
                        wcet=float(item["wcet"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ApiError.bad_request(
                    "invalid-request", f"workload item #{i}: {exc}"
                ) from None
        try:
            instants = tuple(float(t) for t in raw_instants)
        except (TypeError, ValueError):
            raise ApiError.bad_request(
                "invalid-request", "'instants' must be a list of numbers"
            ) from None
        if any(t < 0 for t in instants):
            raise ApiError.bad_request(
                "invalid-request", "'instants' must be non-negative"
            )
        return cls(workload=tuple(items), instants=instants)

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": [
                {"period": w.period, "deadline": w.deadline, "wcet": w.wcet}
                for w in self.workload
            ],
            "instants": list(self.instants),
        }


@dataclass(frozen=True)
class DbfResponse:
    demands: tuple[float, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"demands": list(self.demands)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DbfResponse":
        return cls(demands=tuple(float(d) for d in data["demands"]))


# -- full certification report -------------------------------------------------


@dataclass(frozen=True)
class AnalyzeRequest:
    """The complete toolchain run behind ``ftmc analyze``."""

    taskset: TaskSet
    operation_hours: float = DEFAULT_OPERATION_HOURS
    degradation_factor: float = 6.0

    @classmethod
    def from_dict(cls, data: Any) -> "AnalyzeRequest":
        data = _require_mapping(data, "request body")
        return cls(
            taskset=parse_taskset_field(data),
            operation_hours=_parse_float(
                data, "operation_hours", DEFAULT_OPERATION_HOURS
            ),
            degradation_factor=_parse_float(data, "degradation_factor", 6.0),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "taskset": taskset_to_dict(self.taskset),
            "operation_hours": self.operation_hours,
            "degradation_factor": self.degradation_factor,
        }


@dataclass(frozen=True)
class AnalyzeResponse:
    """Feasibility verdict plus the rendered certification report.

    ``report`` is byte-identical to what ``ftmc analyze`` prints for the
    same document — the contract the serve-smoke CI job pins.
    """

    feasible: bool
    recommendation: str
    report: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "feasible": self.feasible,
            "recommendation": self.recommendation,
            "report": self.report,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalyzeResponse":
        return cls(
            feasible=bool(data["feasible"]),
            recommendation=str(data["recommendation"]),
            report=str(data["report"]),
        )
