"""``ftmc serve``: a resident HTTP/JSON front-end for the facade.

Stdlib only (:mod:`http.server`); one :class:`AnalysisService` instance
is shared by every handler thread, so the schedulability verdict memo,
the profile memos and the dbf micro-batcher stay warm across requests —
the whole point of serving instead of one-shot CLI runs.

Routes (bodies and responses are JSON, keys sorted for byte-stable
output):

========  ===================  =============================================
method    path                 operation
========  ===================  =============================================
GET       ``/healthz``         liveness + schema id
GET       ``/v1/backends``     selectable backend catalog
GET       ``/v1/stats``        cache/metric warm-state snapshot
POST      ``/v1/schedule``     FT-S profile search (Algorithm 1)
POST      ``/v1/schedulability``  one backend verdict on ``Gamma(n, n')``
POST      ``/v1/pfh``          PFH bounds (eqs. 2, 5, 7)
POST      ``/v1/dbf``          batched demand-bound evaluation
POST      ``/v1/analyze``      full certification report (= ``ftmc analyze``)
POST      ``/v1/plan``         FT-MP partitioned planning (= ``ftmc plan``)
========  ===================  =============================================

Every failure is a structured JSON error body — a traceback never
reaches the wire: :class:`~repro.api.types.ApiError` maps to its own
status (invalid task sets are 4xx), anything unexpected to a generic
500 with the exception type name only.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.api.service import AnalysisService, backend_catalog
from repro.api.types import (
    API_SCHEMA,
    AnalyzeRequest,
    ApiError,
    DbfRequest,
    PFHRequest,
    PlanRequest,
    ScheduleRequest,
    SchedulabilityRequest,
)
from repro.obs import metrics as obs_metrics

__all__ = ["ApiServer", "MAX_BODY_BYTES"]

#: Largest accepted request body; beyond it the server answers 413
#: instead of buffering an unbounded payload in a resident process.
MAX_BODY_BYTES = 8 * 1024 * 1024


def _json_bytes(payload: dict[str, Any]) -> bytes:
    """Canonical wire encoding: sorted keys, no float coercion surprises."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the shared service; all responses JSON."""

    # Set by ApiServer on the *handler class* it instantiates per server.
    service: AnalysisService

    protocol_version = "HTTP/1.1"

    # Buffer the whole response (status line + headers + body) into one
    # send, and turn Nagle off.  The stdlib default — unbuffered wfile —
    # puts headers and body in separate TCP segments, and Nagle plus
    # delayed ACK then stalls every keep-alive round trip by ~40 ms.
    wbufsize = -1
    disable_nagle_algorithm = True

    # The default handler logs every request to stderr; a resident server
    # must stay quiet (observability goes through repro.obs instead).
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- plumbing --------------------------------------------------------------

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise ApiError(411, "length-required",
                           "request needs a Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "too-large",
                           f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError.bad_request("invalid-json",
                                       f"request body is not JSON: {exc}") from None

    def _dispatch(self, handler: Callable[[], dict[str, Any]]) -> None:
        try:
            self._respond(200, handler())
        except ApiError as exc:
            self._respond(exc.status, exc.to_dict())
        except Exception as exc:  # noqa: BLE001 - the wire must never see a traceback
            obs_metrics.inc("api.errors.internal")
            self._respond(
                500,
                {
                    "error": {
                        "status": 500,
                        "code": "internal",
                        "message": f"internal error ({type(exc).__name__})",
                    }
                },
            )

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        if self.path == "/healthz":
            self._dispatch(lambda: {"status": "ok", "schema": API_SCHEMA})
        elif self.path == "/v1/backends":
            self._dispatch(lambda: {"backends": backend_catalog()})
        elif self.path == "/v1/stats":
            self._dispatch(lambda: dict(self.service.stats()))
        else:
            self._respond(404, ApiError(404, "not-found",
                                        f"no route {self.path!r}").to_dict())

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        service = self.service
        routes: dict[str, Callable[[Any], dict[str, Any]]] = {
            "/v1/schedule": lambda data: service.schedule(
                ScheduleRequest.from_dict(data)).to_dict(),
            "/v1/schedulability": lambda data: service.schedulability(
                SchedulabilityRequest.from_dict(data)).to_dict(),
            "/v1/pfh": lambda data: service.pfh(
                PFHRequest.from_dict(data)).to_dict(),
            "/v1/dbf": lambda data: service.dbf(
                DbfRequest.from_dict(data)).to_dict(),
            "/v1/analyze": lambda data: service.analyze(
                AnalyzeRequest.from_dict(data)).to_dict(),
            "/v1/plan": lambda data: service.plan(
                PlanRequest.from_dict(data)).to_dict(),
        }
        route = routes.get(self.path)
        if route is None:
            self._respond(404, ApiError(404, "not-found",
                                        f"no route {self.path!r}").to_dict())
            return
        self._dispatch(lambda: route(self._read_json()))


class ApiServer:
    """A bound, optionally-threaded ``ftmc serve`` instance.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    construction) — the form the tests and the serve-smoke CI job use.
    ``serve_forever`` blocks (the CLI path); ``start``/``stop`` run the
    accept loop on a daemon thread (the test/bench path).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service: AnalysisService | None = None,
    ) -> None:
        self.service = service if service is not None else AnalysisService()

        # Each ApiServer gets its own handler subclass so concurrent
        # servers (tests) don't share service state through a class attr.
        handler = type("_BoundHandler", (_Handler,), {"service": self.service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`stop` (or process signal)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> None:
        """Serve on a background daemon thread (returns once accepting)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="ftmc-serve", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop accepting, finish in-flight requests, release the socket."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ApiServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
