"""Reduction of a multi-level system to the paper's dual-criticality form.

Semantics (conservative grouping): pick a *boundary* level ``b``.  Tasks
at levels ``>= b`` form the HI group — they are never killed or degraded
and each level keeps its own re-execution profile, so its PFH follows the
plain bound of eq. (2).  Tasks below ``b`` form the LO group — they are
all killed/degraded together when any HI-group instance starts its
``(n' + 1)``-th execution, and each LO-group *level* must individually
satisfy its ceiling under the adapted bounds (eqs. 5/7).

This collapse is sound: it instantiates exactly the dual-criticality
problem the paper solves, with per-task re-execution profiles (which
Lemma 4.1's conversion supports).  It is conservative because a genuinely
multi-level runtime could adapt levels one at a time; analysing that
cascade is an open problem the paper does not treat.

The per-level safety bounds only involve (a) the tasks of the level under
analysis and (b) the HI-group trigger tasks, so the reduction materialises
one dual task set per LO-group level for the eq. (5)/(7) evaluations.
"""

from __future__ import annotations

from repro.model.criticality import (
    CriticalityRole,
    DO178BLevel,
    DualCriticalitySpec,
)
from repro.model.task import Task, TaskSet
from repro.multilevel.model import MLTask, MLTaskSet

__all__ = ["boundary_candidates", "reduce_at_boundary", "level_projection"]


def _as_dual_task(task: MLTask, role: CriticalityRole) -> Task:
    return Task(
        name=task.name,
        period=task.period,
        deadline=task.deadline,
        wcet=task.wcet,
        criticality=role,
        failure_probability=task.failure_probability,
    )


def boundary_candidates(taskset: MLTaskSet) -> list[DO178BLevel]:
    """Boundaries worth trying: every present level except the lowest.

    A boundary ``b`` puts levels ``>= b`` in the HI group; the lowest
    present level as a boundary would leave the LO group empty (that is
    the no-adaptation baseline, handled separately by callers).  Returned
    least-critical-first, so scanning adapts as few levels as possible
    first.
    """
    levels = taskset.levels()  # most critical first
    if len(levels) < 2:
        return []
    return sorted(levels[:-1])


def reduce_at_boundary(
    taskset: MLTaskSet, boundary: DO178BLevel
) -> TaskSet:
    """The grouped dual-criticality task set for boundary ``b``.

    The attached :class:`DualCriticalitySpec` binds HI to the *least*
    critical level of the HI group and LO to the *most* critical level of
    the LO group — the two levels whose ceilings gate the grouped
    searches (every other group member's ceiling is checked per level by
    the multi-level driver).
    """
    hi_group = taskset.at_or_above(boundary)
    lo_group = taskset.below(boundary)
    if not hi_group:
        raise ValueError(f"boundary {boundary.name} leaves the HI group empty")
    if not lo_group:
        raise ValueError(f"boundary {boundary.name} leaves the LO group empty")
    tasks = [_as_dual_task(t, CriticalityRole.HI) for t in hi_group]
    tasks += [_as_dual_task(t, CriticalityRole.LO) for t in lo_group]
    hi_level = min(t.level for t in hi_group)
    lo_level = max(t.level for t in lo_group)
    return TaskSet(
        tasks,
        spec=DualCriticalitySpec(hi_level, lo_level),
        name=f"{taskset.name}@{boundary.name}",
    )


def level_projection(
    taskset: MLTaskSet, boundary: DO178BLevel, level: DO178BLevel
) -> TaskSet:
    """Dual task set for the eq. (5)/(7) bound of one LO-group level.

    Contains the full HI group (the kill/degrade triggers) and, as LO
    tasks, only the tasks of ``level``; the adapted-safety bounds are
    separable per LO level, so this is exact.
    """
    if level >= boundary:
        raise ValueError(
            f"level {level.name} is not below the boundary {boundary.name}"
        )
    hi_group = taskset.at_or_above(boundary)
    members = taskset.by_level(level)
    if not members:
        raise ValueError(f"no tasks at level {level.name}")
    tasks = [_as_dual_task(t, CriticalityRole.HI) for t in hi_group]
    tasks += [_as_dual_task(t, CriticalityRole.LO) for t in members]
    hi_level = min(t.level for t in hi_group)
    return TaskSet(
        tasks,
        spec=DualCriticalitySpec(hi_level, level),
        name=f"{taskset.name}@{boundary.name}/{level.name}",
    )
