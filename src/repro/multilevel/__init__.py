"""Multi-level (beyond dual) criticality — library extension.

The paper defines criticalities over all five DO-178B levels but analyses
the dual case "for ease of presentation".  This subpackage generalises
via a sound *grouped reduction*: pick a boundary level, protect everything
at or above it, adapt everything below it together, and apply the paper's
dual-criticality machinery (Lemma 4.1, Algorithm 1) to the reduced
system while checking every level's PFH ceiling individually.
"""

from repro.multilevel.ftml import MLResult, ft_schedule_multilevel
from repro.multilevel.model import MLTask, MLTaskSet
from repro.multilevel.reduction import (
    boundary_candidates,
    level_projection,
    reduce_at_boundary,
)

__all__ = [
    "MLResult",
    "ft_schedule_multilevel",
    "MLTask",
    "MLTaskSet",
    "boundary_candidates",
    "level_projection",
    "reduce_at_boundary",
]
