"""Multi-level task model: tasks carrying concrete DO-178B levels.

The paper's model (Section 2.1) defines criticalities over all five
DO-178B levels but analyses only the dual case "for ease of
presentation".  This subpackage builds the natural multi-level
generalisation on top of the dual-criticality machinery (see
:mod:`repro.multilevel.reduction` for the semantics).

A :class:`MLTask` is a sporadic task whose criticality is a concrete
:class:`~repro.model.criticality.DO178BLevel`; :class:`MLTaskSet` groups
tasks by level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.model.criticality import DO178BLevel

__all__ = ["MLTask", "MLTaskSet"]


@dataclass(frozen=True)
class MLTask:
    """A sporadic task at one of the five DO-178B levels."""

    name: str
    period: float
    deadline: float
    wcet: float
    level: DO178BLevel
    failure_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"{self.name}: period must be positive")
        if self.deadline <= 0:
            raise ValueError(f"{self.name}: deadline must be positive")
        if self.wcet < 0:
            raise ValueError(f"{self.name}: WCET must be non-negative")
        if not 0.0 <= self.failure_probability < 1.0:
            raise ValueError(
                f"{self.name}: failure probability must lie in [0, 1)"
            )

    @property
    def utilization(self) -> float:
        return self.wcet / self.period


class MLTaskSet:
    """An ordered collection of multi-level tasks."""

    def __init__(self, tasks: Iterable[MLTask], name: str = "ml-taskset") -> None:
        self._tasks = tuple(tasks)
        self.name = name
        seen: set[str] = set()
        for task in self._tasks:
            if task.name in seen:
                raise ValueError(f"duplicate task name: {task.name!r}")
            seen.add(task.name)

    def __iter__(self) -> Iterator[MLTask]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, index: int) -> MLTask:
        return self._tasks[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MLTaskSet({self.name!r}, n={len(self)})"

    @property
    def tasks(self) -> tuple[MLTask, ...]:
        return self._tasks

    def task(self, name: str) -> MLTask:
        for t in self._tasks:
            if t.name == name:
                return t
        raise KeyError(name)

    def levels(self) -> list[DO178BLevel]:
        """Distinct levels present, most critical first."""
        return sorted({t.level for t in self._tasks}, reverse=True)

    def by_level(self, level: DO178BLevel) -> tuple[MLTask, ...]:
        return tuple(t for t in self._tasks if t.level is level)

    def at_or_above(self, level: DO178BLevel) -> tuple[MLTask, ...]:
        return tuple(t for t in self._tasks if t.level >= level)

    def below(self, level: DO178BLevel) -> tuple[MLTask, ...]:
        return tuple(t for t in self._tasks if t.level < level)

    def utilization(self, level: DO178BLevel | None = None) -> float:
        tasks = self._tasks if level is None else self.by_level(level)
        return sum(t.utilization for t in tasks)

    def describe(self) -> str:
        header = f"{'task':<12}{'level':<7}{'T':>10}{'D':>10}{'C':>10}{'f':>12}"
        rows = [header, "-" * len(header)]
        for t in self._tasks:
            rows.append(
                f"{t.name:<12}{t.level.name:<7}{t.period:>10.6g}"
                f"{t.deadline:>10.6g}{t.wcet:>10.6g}{t.failure_probability:>12.3g}"
            )
        rows.append(f"U = {self.utilization():.5f}")
        return "\n".join(rows)
