"""FT-S-ML: fault-tolerant scheduling of multi-level systems.

The multi-level driver generalises Algorithm 1 through the grouped
reduction of :mod:`repro.multilevel.reduction`:

1. *Per-level safety* (line 2 generalised): for every DO-178B level
   present, find the minimal uniform re-execution profile meeting that
   level's ceiling under the plain bound of eq. (2).
2. *Baseline*: if plain EDF schedules the fully inflated workload, no
   adaptation is needed.
3. Otherwise scan the *boundary* ``b`` from the least critical candidate
   upward (adapting as few levels as possible).  For each boundary:

   - ``n1``: the smallest shared adaptation profile keeping **every**
     LO-group level inside its own ceiling under the backend's mechanism
     (eqs. 5/7, evaluated on the per-level projections);
   - ``n2``: the largest profile the backend can schedule on the
     Lemma 4.1 conversion with per-task (per-level) re-execution budgets;
   - feasible iff ``n1 <= n2`` (Algorithm 1, lines 9-15).

4. The first feasible boundary wins; FAILURE if none is.

The result is sound by Theorem 4.1 applied to the reduced dual system;
see the reduction module for why it is conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.edf import Workload, edf_schedulable
from repro.core.backends import SchedulerBackend
from repro.core.conversion import convert
from repro.core.ftmc import DEFAULT_OPERATION_HOURS
from repro.model.criticality import DO178BLevel
from repro.model.faults import AdaptationProfile, ReexecutionProfile
from repro.model.mc_task import MCTaskSet
from repro.model.task import HOUR_MS
from repro.multilevel.model import MLTaskSet
from repro.multilevel.reduction import (
    boundary_candidates,
    level_projection,
    reduce_at_boundary,
)
from repro.safety.degradation import pfh_lo_degradation
from repro.safety.killing import pfh_lo_killing
from repro.safety.pfh import DEFAULT_MAX_REEXECUTIONS, max_rounds

__all__ = ["MLResult", "ft_schedule_multilevel"]


@dataclass(frozen=True)
class MLResult:
    """Outcome of one FT-S-ML run."""

    success: bool
    reason: str
    backend_name: str
    mechanism: str
    operation_hours: float
    #: Minimal re-execution profile per present level (empty on early fail).
    level_profiles: dict[DO178BLevel, int] = field(default_factory=dict)
    #: Chosen boundary; ``None`` when the baseline sufficed or on failure.
    boundary: DO178BLevel | None = None
    #: Shared adaptation profile of the HI group (``None`` without one).
    adaptation: int | None = None
    #: Plain-bound PFH per level at the chosen profiles.
    pfh_plain: dict[DO178BLevel, float] = field(default_factory=dict)
    #: Adapted-bound PFH per LO-group level (killing/degradation).
    pfh_adapted: dict[DO178BLevel, float] = field(default_factory=dict)
    #: Converted MC task set when adaptation is used.
    mc_taskset: MCTaskSet | None = None

    def __bool__(self) -> bool:
        return self.success


def _minimal_level_profile(
    taskset: MLTaskSet,
    level: DO178BLevel,
    max_n: int,
    assume_full_wcet: bool,
) -> tuple[int, float] | None:
    """Smallest uniform ``n`` with ``pfh(level) <= ceiling`` (eq. 2)."""
    tasks = taskset.by_level(level)
    ceiling = level.pfh_ceiling
    for n in range(1, max_n + 1):
        value = 0.0
        for task in tasks:
            scratch = _scratch_task(task)
            rounds = max_rounds(scratch, n, HOUR_MS, assume_full_wcet)
            value += rounds * task.failure_probability**n
        if value <= ceiling:
            return n, value
    return None


def _scratch_task(ml_task):
    from repro.model.criticality import CriticalityRole
    from repro.model.task import Task

    return Task(
        ml_task.name,
        ml_task.period,
        ml_task.deadline,
        ml_task.wcet,
        CriticalityRole.HI,
        ml_task.failure_probability,
    )


def ft_schedule_multilevel(
    taskset: MLTaskSet,
    backend: SchedulerBackend,
    operation_hours: float = DEFAULT_OPERATION_HOURS,
    max_n: int = DEFAULT_MAX_REEXECUTIONS,
    assume_full_wcet: bool = True,
) -> MLResult:
    """Run FT-S-ML on a multi-level system with the given backend."""

    def fail(reason: str, **fields) -> MLResult:
        return MLResult(
            success=False,
            reason=reason,
            backend_name=backend.name,
            mechanism=backend.mechanism,
            operation_hours=operation_hours,
            **fields,
        )

    levels = taskset.levels()
    if not levels:
        return fail("empty task set")

    # Step 1: per-level minimal re-execution profiles (plain eq. 2).
    level_profiles: dict[DO178BLevel, int] = {}
    pfh_plain: dict[DO178BLevel, float] = {}
    for level in levels:
        found = _minimal_level_profile(taskset, level, max_n, assume_full_wcet)
        if found is None:
            return fail(
                f"level {level.name} cannot meet its PFH ceiling within "
                f"{max_n} executions"
            )
        level_profiles[level], pfh_plain[level] = found

    profile_of = {t.name: level_profiles[t.level] for t in taskset}

    # Step 2: no-adaptation baseline — plain EDF on the inflated workload.
    inflated = [
        Workload(t.period, t.deadline, profile_of[t.name] * t.wcet)
        for t in taskset
    ]
    if edf_schedulable(inflated):
        return MLResult(
            success=True,
            reason="schedulable by plain EDF with full re-execution budgets",
            backend_name="edf",
            mechanism="none",
            operation_hours=operation_hours,
            level_profiles=level_profiles,
            pfh_plain=pfh_plain,
        )

    # Step 3: boundary scan, least-critical candidate first.
    for boundary in boundary_candidates(taskset):
        dual = reduce_at_boundary(taskset, boundary)
        reexecution = ReexecutionProfile(
            {t.name: profile_of[t.name] for t in dual}
        )
        cap = min(
            level_profiles[level]
            for level in levels
            if level >= boundary
        )

        # n1: every LO-group level individually safe under adaptation.
        n1 = 1
        pfh_adapted: dict[DO178BLevel, float] = {}
        feasible_safety = True
        for level in levels:
            if level >= boundary:
                continue
            projection = level_projection(taskset, boundary, level)
            proj_profile = ReexecutionProfile(
                {t.name: profile_of[t.name] for t in projection}
            )
            level_n1 = None
            for n_prime in range(1, cap + 1):
                adaptation = AdaptationProfile.uniform(projection, n_prime)
                if backend.mechanism == "degrade":
                    value = pfh_lo_degradation(
                        projection, proj_profile, adaptation,
                        operation_hours, assume_full_wcet,
                    )
                else:
                    value = pfh_lo_killing(
                        projection, proj_profile, adaptation,
                        operation_hours, assume_full_wcet,
                    )
                if value < level.pfh_ceiling:
                    level_n1 = n_prime
                    pfh_adapted[level] = value
                    break
            if level_n1 is None:
                feasible_safety = False
                break
            n1 = max(n1, level_n1)
        if not feasible_safety:
            continue

        # n2: maximal schedulable adaptation profile (Lemma 4.1 conversion).
        n2 = None
        for n_prime in range(cap, 0, -1):
            adaptation = AdaptationProfile.uniform(dual, n_prime)
            mc = convert(dual, reexecution, adaptation)
            if backend.is_schedulable(mc):
                n2 = n_prime
                break
        if n2 is None or n1 > n2:
            continue

        # Recompute the adapted bounds at the adopted profile n2.
        final_adapted: dict[DO178BLevel, float] = {}
        for level in levels:
            if level >= boundary:
                continue
            projection = level_projection(taskset, boundary, level)
            proj_profile = ReexecutionProfile(
                {t.name: profile_of[t.name] for t in projection}
            )
            adaptation = AdaptationProfile.uniform(projection, n2)
            if backend.mechanism == "degrade":
                final_adapted[level] = pfh_lo_degradation(
                    projection, proj_profile, adaptation,
                    operation_hours, assume_full_wcet,
                )
            else:
                final_adapted[level] = pfh_lo_killing(
                    projection, proj_profile, adaptation,
                    operation_hours, assume_full_wcet,
                )

        adaptation = AdaptationProfile.uniform(dual, n2)
        return MLResult(
            success=True,
            reason=f"feasible at boundary {boundary.name} with n'={n2}",
            backend_name=backend.name,
            mechanism=backend.mechanism,
            operation_hours=operation_hours,
            level_profiles=level_profiles,
            boundary=boundary,
            adaptation=n2,
            pfh_plain=pfh_plain,
            pfh_adapted=final_adapted,
            mc_taskset=convert(dual, reexecution, adaptation),
        )

    return fail(
        "no boundary yields overlapping safe and schedulable adaptation "
        "profiles",
        level_profiles=level_profiles,
        pfh_plain=pfh_plain,
    )
