"""FT-MP: fault-tolerant mixed-criticality scheduling on ``m`` processors.

A library extension in the paper's stated future-work direction: the
uniprocessor FT-S algorithm lifted to partitioned multiprocessor
scheduling.  The lift is sound because partitioning reduces the problem
to ``m`` independent instances of the paper's uniprocessor problem:

- **safety** is processor-independent.  The plain bounds (eq. 2) count
  rounds per task; the adapted bounds (eqs. 5/7) use the *global* trigger
  — the mode switch fires when any HI task on any processor starts its
  ``(n'+1)``-th execution and kills/degrades every LO task system-wide —
  which is exactly the quantity eq. (3) already bounds over all HI tasks;
- **schedulability** holds iff some partition makes every processor pass
  the uniprocessor backend test on its share of the converted set
  (Lemma 4.1).

The driver mirrors Algorithm 1, replacing line 8's test with a planning
run (:func:`repro.planner.plan_partition`) at each candidate adaptation
profile: the heuristic portfolio first, then the exact branch-and-bound
unless disabled.  A found partition is proof of schedulability; a
heuristic miss alone is merely inconclusive.  The planner makes the
distinction explicit — when every miss along the descending ``n'`` scan
was *proven* infeasible by a completed exact search, the reported ``n2``
(or the UNSCHEDULABLE verdict) is exact relative to the backend's test;
otherwise the result carries ``inconclusive=True``, meaning the true
``n2`` may be larger than reported (the historic silent-pessimism case).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backends import SchedulerBackend
from repro.core.conversion import convert_uniform
from repro.core.ftmc import DEFAULT_OPERATION_HOURS, FTSFailure
from repro.core.profiles import (
    minimal_adaptation_profile,
    minimal_reexecution_profiles,
    pfh_lo_adapted,
)
from repro.model.criticality import CriticalityRole
from repro.model.faults import ReexecutionProfile
from repro.model.task import TaskSet
from repro.planner import PlanOptions, PlanResult, plan_partition
from repro.planner.partition import Partition
from repro.safety.pfh import DEFAULT_MAX_REEXECUTIONS, pfh_plain

__all__ = ["FTMPResult", "ft_schedule_partitioned"]


@dataclass(frozen=True)
class FTMPResult:
    """Outcome of one FT-MP run.

    ``inconclusive`` is True when some adaptation profile above the
    adopted one (or, on failure, any profile at all) was rejected only
    heuristically — i.e. without a completed exact search proving it
    infeasible — so the reported ``n2``/verdict may be pessimistic.
    ``plan`` carries the planning outcome behind the adopted partition.
    """

    success: bool
    failure: FTSFailure | None
    m: int
    backend_name: str
    mechanism: str
    operation_hours: float
    n_hi: int | None = None
    n_lo: int | None = None
    n1_hi: int | None = None
    n2_hi: int | None = None
    adaptation: int | None = None
    partition: Partition | None = None
    pfh_hi: float = float("nan")
    pfh_lo: float = float("nan")
    inconclusive: bool = False
    plan: PlanResult | None = None

    def __bool__(self) -> bool:
        return self.success


def ft_schedule_partitioned(
    taskset: TaskSet,
    m: int,
    backend: SchedulerBackend,
    operation_hours: float = DEFAULT_OPERATION_HOURS,
    max_n: int = DEFAULT_MAX_REEXECUTIONS,
    assume_full_wcet: bool = True,
    plan_options: PlanOptions | None = None,
) -> FTMPResult:
    """FT-S on ``m`` processors via planned partitioning.

    Identical to :func:`repro.core.ftmc.ft_schedule` except that the
    schedulability oracle is "the converted set partitions onto ``m``
    processors with every share passing the backend test", answered by
    :func:`repro.planner.plan_partition` under ``plan_options`` (default:
    full portfolio plus exact search).
    """
    if m < 1:
        raise ValueError(f"need at least one processor, got {m}")
    options = plan_options if plan_options is not None else PlanOptions()

    def fail(reason: FTSFailure, **fields) -> FTMPResult:
        return FTMPResult(
            success=False,
            failure=reason,
            m=m,
            backend_name=backend.name,
            mechanism=backend.mechanism,
            operation_hours=operation_hours,
            **fields,
        )

    profiles = minimal_reexecution_profiles(
        taskset, max_n=max_n, assume_full_wcet=assume_full_wcet
    )
    if profiles is None:
        return fail(FTSFailure.UNSAFE_REEXECUTION)
    n_hi, n_lo = profiles.n_hi, profiles.n_lo

    n1 = minimal_adaptation_profile(
        taskset, n_hi, n_lo, backend.mechanism, operation_hours,
        assume_full_wcet,
    )
    if n1 is None:
        return fail(FTSFailure.UNSAFE_ADAPTATION, n_hi=n_hi, n_lo=n_lo)

    n2 = None
    plan = None
    # A miss at some n' above the adopted n2 that the exact search did
    # not prove infeasible leaves the reported n2 possibly pessimistic.
    pessimistic_miss = False
    for n_prime in range(n_hi, 0, -1):
        mc = convert_uniform(taskset, n_hi, n_lo, n_prime)
        candidate = plan_partition(mc, m, backend, options)
        if candidate.schedulable:
            n2 = n_prime
            plan = candidate
            break
        if not candidate.proven_infeasible:
            pessimistic_miss = True
    if n2 is None or plan is None:
        return fail(
            FTSFailure.UNSCHEDULABLE, n_hi=n_hi, n_lo=n_lo, n1_hi=n1,
            inconclusive=pessimistic_miss,
        )
    if n1 > n2:
        return fail(
            FTSFailure.INFEASIBLE_WINDOW, n_hi=n_hi, n_lo=n_lo,
            n1_hi=n1, n2_hi=n2, inconclusive=pessimistic_miss, plan=plan,
        )

    reexecution = ReexecutionProfile.uniform(taskset, n_hi, n_lo)
    return FTMPResult(
        success=True,
        failure=None,
        m=m,
        backend_name=backend.name,
        mechanism=backend.mechanism,
        operation_hours=operation_hours,
        n_hi=n_hi,
        n_lo=n_lo,
        n1_hi=n1,
        n2_hi=n2,
        adaptation=n2,
        partition=plan.partition,
        pfh_hi=pfh_plain(taskset, CriticalityRole.HI, reexecution,
                         assume_full_wcet),
        pfh_lo=pfh_lo_adapted(
            taskset, n_hi, n_lo, n2, backend.mechanism, operation_hours,
            assume_full_wcet,
        ),
        inconclusive=pessimistic_miss,
        plan=plan,
    )
