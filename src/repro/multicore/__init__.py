"""Partitioned multiprocessor scheduling — library extension.

Lifts the paper's uniprocessor FT-S to ``m`` processors by partitioning
the converted task set; each share is an independent instance of the
uniprocessor problem, so soundness follows directly.  Partitioning is
delegated to :mod:`repro.planner` (heuristic portfolio + exact
branch-and-bound); :func:`first_fit_decreasing` remains as the original
seed baseline.
"""

from repro.multicore.ftmp import FTMPResult, ft_schedule_partitioned
from repro.multicore.partition import Partition, first_fit_decreasing

__all__ = [
    "FTMPResult",
    "ft_schedule_partitioned",
    "Partition",
    "first_fit_decreasing",
]
