"""Partitioning heuristics for mixed-criticality task sets.

Building block of the partitioned-multiprocessor extension
(:mod:`repro.multicore.ftmp`).  A partition assigns every task of a
converted MC task set (Lemma 4.1) to one of ``m`` processors; each
processor is then exactly the paper's uniprocessor problem.

This module keeps the original seed heuristic,
:func:`first_fit_decreasing`, as the stable public baseline; the full
packing portfolio (best/worst-fit flavours, pluggable size keys,
fault-tolerance-aware balancing) and the exact branch-and-bound
optimizer live in :mod:`repro.planner`, which also owns the
:class:`~repro.planner.partition.Partition` value type re-exported here
for backward compatibility.

Feasibility of a placement is delegated to the uniprocessor backend, so
any :class:`~repro.core.backends.SchedulerBackend` works.
"""

from __future__ import annotations

from repro.core.backends import SchedulerBackend
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet
from repro.planner.partition import Partition

__all__ = ["Partition", "first_fit_decreasing"]


def _size(task: MCTask) -> float:
    """Bin-packing size: the task's largest per-mode utilization."""
    return max(
        task.utilization(CriticalityRole.HI),
        task.utilization(CriticalityRole.LO),
    )


def first_fit_decreasing(
    mc: MCTaskSet,
    m: int,
    backend: SchedulerBackend,
    criticality_aware: bool = True,
) -> Partition | None:
    """First-fit decreasing partitioning validated by the backend test.

    Tasks are ordered by decreasing size; with ``criticality_aware`` the
    HI tasks are placed before any LO task.  Equal-size tasks order by
    task name — without that tie-breaker the packing (and therefore any
    result file built on it) would depend on the task set's insertion
    order rather than on its parameters alone.  A task goes to the first
    processor where the backend still accepts the accumulated set.
    Returns ``None`` when some task fits nowhere.
    """
    if m < 1:
        raise ValueError(f"need at least one processor, got {m}")
    if criticality_aware:
        ordered = sorted(
            mc,
            key=lambda t: (
                t.criticality is not CriticalityRole.HI,  # HI first
                -_size(t),
                t.name,
            ),
        )
    else:
        ordered = sorted(mc, key=lambda t: (-_size(t), t.name))

    bins: list[list[MCTask]] = [[] for _ in range(m)]
    for task in ordered:
        placed = False
        for bin_tasks in bins:
            candidate = MCTaskSet(bin_tasks + [task])
            if backend.is_schedulable(candidate):
                bin_tasks.append(task)
                placed = True
                break
        if not placed:
            return None
    return Partition(
        processors=tuple(
            MCTaskSet(bin_tasks, name=f"{mc.name}/P{index}")
            for index, bin_tasks in enumerate(bins)
        )
    )
