"""Partitioning heuristics for mixed-criticality task sets.

Building block of the partitioned-multiprocessor extension
(:mod:`repro.multicore.ftmp`).  A partition assigns every task of a
converted MC task set (Lemma 4.1) to one of ``m`` processors; each
processor is then exactly the paper's uniprocessor problem.

Heuristics (all first-fit flavoured, the standard baseline family):

- :func:`first_fit_decreasing` — tasks sorted by a size measure, placed
  on the first processor whose backend test still passes;
- *criticality-aware* ordering (HI tasks first) tends to spread the HI
  load before the LO filler arrives, which helps the EDF-VD test whose
  HI-mode term is the bottleneck.

Feasibility of a placement is delegated to the uniprocessor backend, so
any :class:`~repro.core.backends.SchedulerBackend` works.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backends import SchedulerBackend
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet

__all__ = ["Partition", "first_fit_decreasing"]


@dataclass(frozen=True)
class Partition:
    """An assignment of MC tasks to processors."""

    processors: tuple[MCTaskSet, ...]

    @property
    def m(self) -> int:
        return len(self.processors)

    def processor_of(self, task_name: str) -> int:
        for index, processor in enumerate(self.processors):
            if any(t.name == task_name for t in processor):
                return index
        raise KeyError(task_name)

    def describe(self) -> str:
        lines = []
        for index, processor in enumerate(self.processors):
            names = ", ".join(t.name for t in processor)
            lines.append(
                f"P{index}: U_HI^HI={processor.u_hi_hi:.3f} "
                f"U_LO^LO={processor.u_lo_lo:.3f} [{names}]"
            )
        return "\n".join(lines)


def _size(task: MCTask) -> float:
    """Bin-packing size: the task's largest per-mode utilization."""
    return max(
        task.utilization(CriticalityRole.HI),
        task.utilization(CriticalityRole.LO),
    )


def first_fit_decreasing(
    mc: MCTaskSet,
    m: int,
    backend: SchedulerBackend,
    criticality_aware: bool = True,
) -> Partition | None:
    """First-fit decreasing partitioning validated by the backend test.

    Tasks are ordered by decreasing size; with ``criticality_aware`` the
    HI tasks are placed before any LO task.  A task goes to the first
    processor where the backend still accepts the accumulated set.
    Returns ``None`` when some task fits nowhere.
    """
    if m < 1:
        raise ValueError(f"need at least one processor, got {m}")
    if criticality_aware:
        ordered = sorted(
            mc,
            key=lambda t: (
                t.criticality is not CriticalityRole.HI,  # HI first
                -_size(t),
            ),
        )
    else:
        ordered = sorted(mc, key=lambda t: -_size(t))

    bins: list[list[MCTask]] = [[] for _ in range(m)]
    for task in ordered:
        placed = False
        for bin_tasks in bins:
            candidate = MCTaskSet(bin_tasks + [task])
            if backend.is_schedulable(candidate):
                bin_tasks.append(task)
                placed = True
                break
        if not placed:
            return None
    return Partition(
        processors=tuple(
            MCTaskSet(bin_tasks, name=f"{mc.name}/P{index}")
            for index, bin_tasks in enumerate(bins)
        )
    )
