"""repro.obs — unified observability: metrics, tracing, clock discipline.

The paper's pipeline (Lemma 4.1 conversion -> EDF-VD tests -> FT-S
profile search -> campaign sweeps) is instrumented through this package
so one can answer "where did the time go, how many QPA iterations ran,
which shard's retries dominated" without ad-hoc prints:

- :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms, **disabled by default** (every recording call
  is a single boolean check when off, so the hot analysis paths carry
  no measurable overhead and the ``ftmc bench`` speedup floors hold).
  Enable programmatically (:func:`enable`), via the ``REPRO_OBS``
  environment variable, or implicitly by opening a trace session.
- :mod:`repro.obs.trace` — nestable spans (``with span("qpa", ...)``)
  and point events emitting schema-versioned JSONL
  (:data:`~repro.obs.trace.TRACE_SCHEMA`) through the crash-safe
  appender of :mod:`repro.io`; the loader tolerates torn tails exactly
  like the campaign checkpoint loader.
- :mod:`repro.obs.clock` — the repository's only sanctioned clock
  access inside ``analysis/``, ``sim/`` and ``runner/`` (lint rule
  FTMCC07): monotonic readings for durations, wall readings for
  ``created_unix``-style timestamps, never mixed.
- :mod:`repro.obs.stats` — aggregation of a trace stream (or the live
  registry) into the tables behind ``ftmc stats``.

See ``docs/observability.md`` for the event schema, the metric catalog
and the enable/overhead contract.
"""

from repro.obs import clock
from repro.obs.metrics import (
    OBS_ENV,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    gauge,
    inc,
    observe,
    registry,
    timer,
)
from repro.obs.stats import (
    STATS_SCHEMA,
    aggregate_trace,
    render_stats,
    snapshot_stats,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    SpanHandle,
    TraceLog,
    TraceSession,
    active_session,
    check_trace,
    event,
    load_trace,
    open_span,
    span,
    start_tracing,
    stop_tracing,
    tracing,
)

__all__ = [
    "OBS_ENV",
    "STATS_SCHEMA",
    "TRACE_SCHEMA",
    "MetricsRegistry",
    "SpanHandle",
    "TraceLog",
    "TraceSession",
    "active_session",
    "aggregate_trace",
    "check_trace",
    "clock",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "inc",
    "load_trace",
    "observe",
    "open_span",
    "registry",
    "render_stats",
    "snapshot_stats",
    "span",
    "start_tracing",
    "stop_tracing",
    "timer",
    "tracing",
]
