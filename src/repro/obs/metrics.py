"""Process-wide metrics registry: counters, gauges, histograms, timers.

Disabled by default with a zero-overhead no-op path: every module-level
recording helper (:func:`inc`, :func:`gauge`, :func:`observe`,
:func:`timer`) first checks one module-global boolean and returns
immediately when observability is off.  The instrumented hot paths
(QPA, the dbf-MC factor scan, the schedulability cache) therefore pay a
single predictable branch per *call*, never per inner-loop iteration —
the ``ftmc bench`` speedup floors are unaffected either way, since the
optimized and reference variants carry the identical instrumentation.

Enabling:

- programmatically — :func:`enable` / :func:`disable`;
- by environment — set ``REPRO_OBS`` to anything but ``""``/``"0"``
  before the process starts (read once at import;
  :func:`configure_from_env` re-reads it for tests);
- implicitly — opening a trace session
  (:func:`repro.obs.trace.start_tracing`) enables the registry so span
  streams and metric snapshots stay consistent.

The registry itself is thread-safe (one lock around every mutation) and
deliberately simple: names are flat dotted strings (see the metric
catalog in ``docs/observability.md``), histograms keep count/total/
min/max rather than buckets — enough to answer "how many and how big"
without a stats dependency.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Mapping

from repro.obs import clock

__all__ = [
    "OBS_ENV",
    "Histogram",
    "MetricsRegistry",
    "configure_from_env",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "inc",
    "observe",
    "registry",
    "timer",
]

#: Environment switch: any value but ``""``/``"0"`` enables the registry.
OBS_ENV = "REPRO_OBS"


class Histogram:
    """Count/total/min/max summary of an observed value stream."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> dict[str, float]:
        """JSON-serialisable summary (mean included for convenience)."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
        }


class MetricsRegistry:
    """Thread-safe container for counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable snapshot of every metric, sorted by name."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Drop every metric (tests and fresh trace sessions)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every helper below records into.
_registry = MetricsRegistry()

#: Master switch — module-global so the disabled path is one LOAD_GLOBAL
#: plus a branch.
_enabled: bool = False


def registry() -> MetricsRegistry:
    """The process-wide registry (always readable, even when disabled)."""
    return _registry


def enabled() -> bool:
    """Whether recording helpers currently write into the registry."""
    return _enabled


def enable() -> None:
    """Turn metric recording on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn metric recording off (the default)."""
    global _enabled
    _enabled = False


def configure_from_env(environ: Mapping[str, str] | None = None) -> bool:
    """Set the switch from :data:`OBS_ENV`; returns the resulting state."""
    global _enabled
    source = os.environ if environ is None else environ
    _enabled = source.get(OBS_ENV, "") not in ("", "0")
    return _enabled


configure_from_env()


def inc(name: str, value: int = 1) -> None:
    """Counter increment — no-op unless observability is enabled."""
    if _enabled:
        _registry.inc(name, value)


def gauge(name: str, value: float) -> None:
    """Gauge update — no-op unless observability is enabled."""
    if _enabled:
        _registry.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Histogram sample — no-op unless observability is enabled."""
    if _enabled:
        _registry.observe(name, value)


class timer:
    """``with timer("name"):`` — observe the block's duration in ns.

    When disabled the context manager neither reads a clock nor touches
    the registry.
    """

    __slots__ = ("name", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self._start: int | None = None

    def __enter__(self) -> "timer":
        if _enabled:
            self._start = clock.monotonic_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            _registry.observe(self.name, clock.monotonic_ns() - self._start)
            self._start = None
