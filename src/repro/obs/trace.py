"""Structured tracing: nestable spans over schema-versioned JSONL.

One trace file is one *session*: a ``header`` record followed by a
stream of ``span-start`` / ``span-end`` / ``event`` records and a final
``metrics`` snapshot, one JSON object per line (schema
:data:`TRACE_SCHEMA`).  Timestamps are **monotonic nanoseconds relative
to the session start** (``t_ns``), so durations are never negative
across wall-clock adjustments; the header carries the one wall-clock
reading (``created_unix``) for humans.  The exact record shapes are
documented in ``docs/observability.md``.

Writing goes through :class:`repro.io.JsonlAppender` (flush per record,
fsync on close) — a crash can at worst tear the trailing line, and
:func:`load_trace` skips-and-counts torn lines exactly like the
campaign checkpoint loader.

Usage::

    with tracing("run.jsonl"):
        with span("campaign", experiment="fig1"):
            event("shard.retry", id="nprime-2", attempt=1)

When no session is active (the default), :func:`span` and :func:`event`
return immediately — library code can stay instrumented unconditionally.
Span nesting is tracked with a :class:`contextvars.ContextVar`, so
parent links stay correct across threads.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs import clock, metrics

__all__ = [
    "TRACE_SCHEMA",
    "RECORD_TYPES",
    "SpanHandle",
    "TraceLog",
    "TraceSession",
    "active_session",
    "check_trace",
    "event",
    "load_trace",
    "open_span",
    "register_fork_reset",
    "reset_inherited_session",
    "span",
    "start_tracing",
    "stop_tracing",
    "tracing",
]

#: Schema identifier stamped into every trace header.
TRACE_SCHEMA = "ftmc-obs/1"

#: Every record type a well-formed trace may contain.
RECORD_TYPES = frozenset(
    {"header", "span-start", "span-end", "event", "metrics"}
)

#: The active session (process-global: one trace stream per process).
_session: "TraceSession | None" = None

#: Innermost open span id for the current context (thread/task local).
_parent: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_parent_span", default=None
)


class TraceSession:
    """One open trace stream: allocates span ids, emits records."""

    def __init__(self, path: str) -> None:
        # Imported here, not at module level: the instrumented analysis
        # modules import repro.obs, and repro.io (transitively) imports
        # them back — deferring to session open breaks the cycle.
        from repro.io import JsonlAppender

        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.path = path
        self._writer = JsonlAppender(path)
        self._ids = itertools.count(1)
        self._t0 = clock.monotonic_ns()
        #: Whether the registry was already enabled when the session
        #: opened (stop_tracing restores that state).
        self._metrics_were_enabled = False
        self.emit(
            {
                "schema": TRACE_SCHEMA,
                "type": "header",
                "created_unix": clock.wall_time(),
            }
        )

    def now_ns(self) -> int:
        """Monotonic nanoseconds since the session opened."""
        return clock.monotonic_ns() - self._t0

    def next_id(self) -> int:
        return next(self._ids)

    def emit(self, record: dict[str, Any]) -> None:
        self._writer.write(record)

    def close(self) -> None:
        """Emit the final metrics snapshot and durably close the stream."""
        self.emit(
            {
                "type": "metrics",
                "t_ns": self.now_ns(),
                "metrics": metrics.registry().snapshot(),
            }
        )
        self._writer.close()

    def abandon(self) -> None:
        """Drop the stream without writing (forked child, see below)."""
        self._writer.abandon()


def active_session() -> TraceSession | None:
    """The process's open trace session, if any."""
    return _session


def start_tracing(path: str) -> TraceSession:
    """Open a trace session at ``path`` and enable the metrics registry.

    The registry is reset so the session's final ``metrics`` record
    describes exactly this session's work; the previous enabled state is
    restored by :func:`stop_tracing`.
    """
    global _session
    if _session is not None:
        raise RuntimeError(f"a trace session is already active: {_session.path}")
    session = TraceSession(path)
    session._metrics_were_enabled = metrics.enabled()
    metrics.registry().reset()
    metrics.enable()
    _session = session
    return session


def stop_tracing() -> None:
    """Close the active session (no-op when none is open)."""
    global _session
    session = _session
    if session is None:
        return
    _session = None
    try:
        session.close()
    finally:
        if not session._metrics_were_enabled:
            metrics.disable()


@contextmanager
def tracing(path: str) -> Iterator[TraceSession]:
    """``with tracing(path):`` — session scoped to the block."""
    session = start_tracing(path)
    try:
        yield session
    finally:
        stop_tracing()


#: Callbacks run by :func:`reset_inherited_session` after the trace
#: stream is disarmed — process-wide caches that must not survive a fork
#: register here (see :func:`register_fork_reset`).
_fork_resets: list[Any] = []


def register_fork_reset(callback: Any) -> None:
    """Register a callable to run in forked children (idempotent).

    The FTMCF fork-safety rules require worker entry points to call
    :func:`reset_inherited_session` before doing real work; modules
    holding process-wide memo state (e.g. the timing-point
    ``lru_cache`` of :mod:`repro.safety.killing`) register their clear
    functions here so a child starts from cold caches instead of
    keeping the parent's pages alive through copy-on-write references.
    Callbacks must be safe to invoke repeatedly and in any order.
    """
    if callback not in _fork_resets:
        _fork_resets.append(callback)


def reset_inherited_session() -> None:
    """Disarm a session inherited across ``fork`` (campaign workers).

    The supervisor owns the trace stream; a forked worker that inherits
    the open appender must neither write to it nor flush it on exit.
    Workers call this first thing, making every subsequent
    :func:`span`/:func:`event` in the child a no-op.  Registered
    fork-reset callbacks (see :func:`register_fork_reset`) then clear
    inherited process-wide caches.
    """
    global _session
    session = _session
    if session is not None:
        _session = None
        session.abandon()
    for callback in _fork_resets:
        callback()


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[int | None]:
    """Nestable traced span; yields the span id (``None`` untraced).

    Emits ``span-start`` on entry and ``span-end`` (with ``dur_ns`` and,
    on an exception, ``error: true``) on exit.  Attributes must be
    JSON-serialisable.
    """
    session = _session
    if session is None:
        yield None
        return
    span_id = session.next_id()
    start_record: dict[str, Any] = {
        "type": "span-start",
        "id": span_id,
        "t_ns": session.now_ns(),
        "name": name,
    }
    parent = _parent.get()
    if parent is not None:
        start_record["parent"] = parent
    if attrs:
        start_record["attrs"] = attrs
    session.emit(start_record)
    token = _parent.set(span_id)
    start_ns = clock.monotonic_ns()
    error = False
    try:
        yield span_id
    except BaseException:
        error = True
        raise
    finally:
        _parent.reset(token)
        end_record: dict[str, Any] = {
            "type": "span-end",
            "id": span_id,
            "t_ns": session.now_ns(),
            "dur_ns": clock.monotonic_ns() - start_ns,
        }
        if error:
            end_record["error"] = True
        # The session may have been stopped inside the span (tests,
        # interrupted CLIs); losing the end record is then acceptable —
        # the loader treats it as an unclosed span.
        if _session is session:
            session.emit(end_record)


def event(name: str, *, span_id: int | None = None, **attrs: Any) -> None:
    """Point event attached to a span (no-op untraced).

    Attaches to the innermost open span of the calling context unless
    ``span_id`` names one explicitly — concurrent structures (the
    campaign pool) manage overlapping spans by handle, outside the
    contextvar nesting.
    """
    session = _session
    if session is None:
        return
    record: dict[str, Any] = {
        "type": "event",
        "t_ns": session.now_ns(),
        "name": name,
    }
    parent = span_id if span_id is not None else _parent.get()
    if parent is not None:
        record["span"] = parent
    if attrs:
        record["attrs"] = attrs
    session.emit(record)


class SpanHandle:
    """A manually managed span (see :func:`open_span`)."""

    __slots__ = ("span_id", "_session", "_start_ns", "_closed")

    def __init__(self, session: TraceSession, span_id: int, start_ns: int) -> None:
        self.span_id = span_id
        self._session = session
        self._start_ns = start_ns
        self._closed = False

    def end(self, error: bool = False) -> None:
        """Emit the ``span-end`` record (idempotent; safe after stop)."""
        if self._closed:
            return
        self._closed = True
        session = self._session
        record: dict[str, Any] = {
            "type": "span-end",
            "id": self.span_id,
            "t_ns": session.now_ns(),
            "dur_ns": clock.monotonic_ns() - self._start_ns,
        }
        if error:
            record["error"] = True
        # Skip the write when the session was stopped underneath us —
        # the loader treats the span as unclosed, same as `span`.
        if _session is session:
            session.emit(record)


def open_span(
    name: str, *, parent: int | None = None, **attrs: Any
) -> SpanHandle | None:
    """Open a span without entering it; returns a handle (``None`` untraced).

    Unlike the :func:`span` context manager this does **not** touch the
    contextvar nesting: it exists for schedulers whose spans overlap in
    one thread (N campaign shards in flight at once), where lexical
    nesting cannot express the lifetimes.  ``parent`` defaults to the
    innermost open contextvar span; pass another span's id to parent
    explicitly.  The caller must call :meth:`SpanHandle.end`.
    """
    session = _session
    if session is None:
        return None
    span_id = session.next_id()
    record: dict[str, Any] = {
        "type": "span-start",
        "id": span_id,
        "t_ns": session.now_ns(),
        "name": name,
    }
    if parent is None:
        parent = _parent.get()
    if parent is not None:
        record["parent"] = parent
    if attrs:
        record["attrs"] = attrs
    session.emit(record)
    return SpanHandle(session, span_id, clock.monotonic_ns())


# -- loading and validation ----------------------------------------------------


@dataclass
class TraceLog:
    """Everything recoverable from a trace file on disk."""

    #: The session header (``None`` when the file never had one).
    header: dict[str, Any] | None = None
    #: Every well-formed non-header record, in file order.
    records: list[dict[str, Any]] = field(default_factory=list)
    #: Lines that did not parse as known records (torn writes).
    corrupt_lines: int = 0

    def of_type(self, record_type: str) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("type") == record_type]

    def span_starts(self, name: str | None = None) -> list[dict[str, Any]]:
        starts = self.of_type("span-start")
        if name is None:
            return starts
        return [r for r in starts if r.get("name") == name]

    def final_metrics(self) -> dict[str, Any] | None:
        """The last metrics snapshot in the stream, if any."""
        snapshots = self.of_type("metrics")
        return snapshots[-1]["metrics"] if snapshots else None


def load_trace(path: str) -> TraceLog:
    """Tolerantly read a trace back (skip-and-count torn lines)."""
    log = TraceLog()
    with open(path) as handle:
        content = handle.read()
    for line in content.split("\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            log.corrupt_lines += 1
            continue
        if not isinstance(record, dict) or record.get("type") not in RECORD_TYPES:
            log.corrupt_lines += 1
            continue
        if record["type"] == "header":
            if log.header is None:
                log.header = record
            else:
                log.corrupt_lines += 1
        else:
            log.records.append(record)
    return log


def _check_record(
    record: dict[str, Any],
    lineno: int,
    open_spans: set[int],
    seen_spans: set[int],
    problems: list[str],
) -> None:
    kind = record.get("type")
    if kind == "span-start":
        span_id = record.get("id")
        if not isinstance(span_id, int) or not isinstance(record.get("name"), str):
            problems.append(f"line {lineno}: span-start needs int 'id' and str 'name'")
            return
        if span_id in seen_spans:
            problems.append(f"line {lineno}: duplicate span id {span_id}")
            return
        parent = record.get("parent")
        if parent is not None and parent not in open_spans:
            problems.append(
                f"line {lineno}: span {span_id} references unknown parent {parent}"
            )
        seen_spans.add(span_id)
        open_spans.add(span_id)
    elif kind == "span-end":
        span_id = record.get("id")
        if span_id not in open_spans:
            problems.append(f"line {lineno}: span-end for unopened span {span_id!r}")
            return
        open_spans.discard(span_id)
        if not isinstance(record.get("dur_ns"), int):
            problems.append(f"line {lineno}: span-end {span_id} missing int 'dur_ns'")
    elif kind == "event":
        if not isinstance(record.get("name"), str):
            problems.append(f"line {lineno}: event needs a str 'name'")
        parent = record.get("span")
        if parent is not None and parent not in seen_spans:
            problems.append(f"line {lineno}: event references unknown span {parent}")
    elif kind == "metrics":
        if not isinstance(record.get("metrics"), dict):
            problems.append(f"line {lineno}: metrics record missing 'metrics' object")


def check_trace(path: str) -> list[str]:
    """Validate a trace against the schema; returns human-readable problems.

    An empty list means the file is a valid :data:`TRACE_SCHEMA` stream.
    A torn *final* line (the one failure mode of a flushed appender) is
    tolerated; garbage anywhere else is reported.  Spans left open (a
    session killed mid-run) are tolerated — only structurally impossible
    records (unknown types, dangling references, duplicate ids) fail.
    """
    with open(path) as handle:
        lines = handle.read().split("\n")
    while lines and not lines[-1].strip():
        lines.pop()
    problems: list[str] = []
    open_spans: set[int] = set()
    seen_spans: set[int] = set()
    saw_header = False
    for index, line in enumerate(lines):
        lineno = index + 1
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                continue  # torn tail: the tolerated failure mode
            problems.append(f"line {lineno}: unparseable JSON")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: record is not an object")
            continue
        kind = record.get("type")
        if kind not in RECORD_TYPES:
            problems.append(f"line {lineno}: unknown record type {kind!r}")
            continue
        if not saw_header:
            if kind != "header":
                problems.append(f"line {lineno}: first record must be a header")
            elif record.get("schema") != TRACE_SCHEMA:
                problems.append(
                    f"line {lineno}: schema {record.get('schema')!r} is not "
                    f"{TRACE_SCHEMA!r}"
                )
            saw_header = True
            if kind == "header":
                continue
        elif kind == "header":
            problems.append(f"line {lineno}: duplicate header")
            continue
        if kind != "header" and "t_ns" in record and not isinstance(
            record["t_ns"], int
        ):
            problems.append(f"line {lineno}: 't_ns' must be an integer")
        _check_record(record, lineno, open_spans, seen_spans, problems)
    if not saw_header:
        problems.append("empty trace: no header record")
    return problems
