"""Clock discipline for the toolchain (lint rule FTMCC07).

The supervisor historically stamped checkpoint manifests with wall-clock
``time.time()`` while measuring watchdog deadlines with
``time.monotonic()`` — two different clocks with two different failure
modes, mixed ad hoc.  This module is the single sanctioned clock access
for ``analysis/``, ``sim/`` and ``runner/`` (enforced by FTMCC07, see
``docs/lint.md``), and it keeps the two jobs separate by name:

- :func:`monotonic` / :func:`monotonic_ns` — **durations and
  deadlines**.  Monotonic readings never jump backwards across NTP
  adjustments, so span durations and watchdog budgets derived from them
  are never negative.
- :func:`wall_time` — **timestamps for humans** (``created_unix``
  fields in manifests and trace headers).  Never subtract two wall
  readings to get a duration.
- :func:`metadata_stamp` — the **sanctioned provenance block** for
  durable artifacts.  Wall time flowing into a checkpoint or result
  file is exactly what determinism rule FTMCD02 exists to flag, but a
  ``created_unix`` field is deliberate provenance, not accidental
  nondeterminism.  Routing it through this one audited helper lets the
  dataflow lint whitelist the pattern (``_SANCTIONED_METADATA``)
  instead of carrying a per-call-site baseline entry.

``repro.perf.bench`` keeps its direct ``time.perf_counter_ns`` access
(it *is* a measurement harness and sits outside the scoped packages).
"""

from __future__ import annotations

import time
from typing import Any

__all__ = ["metadata_stamp", "monotonic", "monotonic_ns", "wall_time"]


def monotonic() -> float:
    """Monotonic seconds — for deadlines and coarse durations."""
    return time.monotonic()


def monotonic_ns() -> int:
    """High-resolution monotonic nanoseconds — for span/timer durations."""
    return time.perf_counter_ns()


def wall_time() -> float:
    """Wall-clock Unix seconds — for ``created_unix`` timestamps only."""
    return time.time()


def metadata_stamp() -> dict[str, Any]:
    """Provenance fields for durable artifact headers (``created_unix``).

    The one sanctioned path for wall time into checkpoints and result
    manifests: writers splat the returned mapping into their header
    record (``{**fields, **clock.metadata_stamp()}``).  Keeping the
    stamp behind a named helper is what lets the determinism lint
    distinguish deliberate provenance from a stray ``time.time()``
    leaking into results.
    """
    return {"created_unix": wall_time()}
