"""Clock discipline for the toolchain (lint rule FTMCC07).

The supervisor historically stamped checkpoint manifests with wall-clock
``time.time()`` while measuring watchdog deadlines with
``time.monotonic()`` — two different clocks with two different failure
modes, mixed ad hoc.  This module is the single sanctioned clock access
for ``analysis/``, ``sim/`` and ``runner/`` (enforced by FTMCC07, see
``docs/lint.md``), and it keeps the two jobs separate by name:

- :func:`monotonic` / :func:`monotonic_ns` — **durations and
  deadlines**.  Monotonic readings never jump backwards across NTP
  adjustments, so span durations and watchdog budgets derived from them
  are never negative.
- :func:`wall_time` — **timestamps for humans** (``created_unix``
  fields in manifests and trace headers).  Never subtract two wall
  readings to get a duration.

``repro.perf.bench`` keeps its direct ``time.perf_counter_ns`` access
(it *is* a measurement harness and sits outside the scoped packages).
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "monotonic_ns", "wall_time"]


def monotonic() -> float:
    """Monotonic seconds — for deadlines and coarse durations."""
    return time.monotonic()


def monotonic_ns() -> int:
    """High-resolution monotonic nanoseconds — for span/timer durations."""
    return time.perf_counter_ns()


def wall_time() -> float:
    """Wall-clock Unix seconds — for ``created_unix`` timestamps only."""
    return time.time()
