"""Aggregation behind ``ftmc stats``: trace streams and live snapshots.

Two sources, one output shape (:data:`STATS_SCHEMA`):

- :func:`aggregate_trace` folds a loaded :class:`~repro.obs.trace.TraceLog`
  into per-span-name duration statistics, per-event-name counts, and the
  stream's final metrics snapshot;
- :func:`snapshot_stats` wraps the live process registry in the same
  shape (no spans — only a running process has those).

:func:`render_stats` produces the terminal table; the CLI emits the raw
dictionary under ``--format json``.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import registry
from repro.obs.trace import TraceLog

__all__ = ["STATS_SCHEMA", "aggregate_trace", "render_stats", "snapshot_stats"]

#: Format identifier for the aggregated output (text and JSON).
STATS_SCHEMA = "ftmc-stats/1"


def aggregate_trace(log: TraceLog, source: str | None = None) -> dict[str, Any]:
    """Fold a trace into span/event/metrics summary statistics.

    Spans carrying an integer ``slot`` attribute (the campaign runner
    stamps its ``shard``/``shard.attempt`` spans with their worker-pool
    slot) additionally feed a per-slot occupancy table under ``pool``,
    so a ``--jobs N`` run shows how evenly the pool was loaded.  Spans
    carrying a string ``executor`` attribute feed the analogous
    per-executor table under ``executors`` — in a ``--executors N`` run
    it shows how the fleet shared the work (a shard reclaimed from a
    lost executor is booked to the executor that first dispatched it).
    """
    names: dict[int, str] = {}
    spans: dict[str, dict[str, Any]] = {}
    slot_of: dict[int, int] = {}
    pool: dict[int, dict[str, Any]] = {}
    executor_of: dict[int, str] = {}
    executors: dict[str, dict[str, Any]] = {}
    open_spans = 0
    for record in log.records:
        kind = record.get("type")
        if kind == "span-start":
            span_id = record.get("id")
            name = str(record.get("name"))
            if isinstance(span_id, int):
                names[span_id] = name
                open_spans += 1
                slot = record.get("attrs", {}).get("slot")
                # Occupancy counts the outer shard span only — attempt
                # spans nest inside it and would double-book the slot.
                if isinstance(slot, int) and name == "shard":
                    slot_of[span_id] = slot
                    pool.setdefault(slot, {"spans": 0, "busy_ns": 0})
                    pool[slot]["spans"] += 1
                executor = record.get("attrs", {}).get("executor")
                if isinstance(executor, str) and name == "shard":
                    executor_of[span_id] = executor
                    executors.setdefault(
                        executor, {"spans": 0, "busy_ns": 0}
                    )
                    executors[executor]["spans"] += 1
            entry = spans.setdefault(
                name,
                {
                    "count": 0,
                    "closed": 0,
                    "errors": 0,
                    "total_ns": 0,
                    "min_ns": None,
                    "max_ns": None,
                },
            )
            entry["count"] += 1
        elif kind == "span-end":
            name = names.get(record.get("id"))  # type: ignore[arg-type]
            if name is None:
                continue
            open_spans -= 1
            entry = spans[name]
            duration = record.get("dur_ns")
            if isinstance(duration, int):
                entry["closed"] += 1
                entry["total_ns"] += duration
                if entry["min_ns"] is None or duration < entry["min_ns"]:
                    entry["min_ns"] = duration
                if entry["max_ns"] is None or duration > entry["max_ns"]:
                    entry["max_ns"] = duration
            if record.get("error"):
                entry["errors"] += 1
            slot = slot_of.get(record.get("id"))  # type: ignore[arg-type]
            if slot is not None and isinstance(duration, int):
                pool[slot]["busy_ns"] += duration
            executor = executor_of.get(record.get("id"))  # type: ignore[arg-type]
            if executor is not None and isinstance(duration, int):
                executors[executor]["busy_ns"] += duration
    events: dict[str, int] = {}
    for record in log.of_type("event"):
        name = str(record.get("name"))
        events[name] = events.get(name, 0) + 1
    metrics_snapshot = log.final_metrics() or {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    return {
        "schema": STATS_SCHEMA,
        "source": source,
        "spans": dict(sorted(spans.items())),
        "open_spans": open_spans,
        "pool": {str(slot): pool[slot] for slot in sorted(pool)},
        "executors": dict(sorted(executors.items())),
        "events": dict(sorted(events.items())),
        "metrics": metrics_snapshot,
        "corrupt_lines": log.corrupt_lines,
    }


def snapshot_stats() -> dict[str, Any]:
    """The live process registry in the aggregated-stats shape."""
    return {
        "schema": STATS_SCHEMA,
        "source": None,
        "spans": {},
        "open_spans": 0,
        "pool": {},
        "executors": {},
        "events": {},
        "metrics": registry().snapshot(),
        "corrupt_lines": 0,
    }


def _format_ns(value: float | int | None) -> str:
    if value is None:
        return "-"
    ns = float(value)
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.1f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def render_stats(stats: dict[str, Any]) -> str:
    """Terminal table for an aggregated-stats dictionary."""
    lines: list[str] = []
    source = stats.get("source")
    lines.append(
        f"== ftmc stats — {source if source else 'process registry'} =="
    )
    spans = stats.get("spans", {})
    if spans:
        lines.append("")
        lines.append(f"{'span':<24}{'count':>7}{'total':>10}{'mean':>10}"
                     f"{'max':>10}{'errors':>8}")
        lines.append("-" * 69)
        for name, entry in spans.items():
            closed = entry.get("closed", 0)
            mean = entry["total_ns"] / closed if closed else None
            lines.append(
                f"{name:<24}{entry['count']:>7}"
                f"{_format_ns(entry['total_ns'] if closed else None):>10}"
                f"{_format_ns(mean):>10}"
                f"{_format_ns(entry.get('max_ns')):>10}"
                f"{entry.get('errors', 0):>8}"
            )
        if stats.get("open_spans"):
            lines.append(f"(unclosed spans: {stats['open_spans']})")
    pool = stats.get("pool", {})
    if pool:
        lines.append("")
        lines.append(f"{'pool slot':<12}{'shards':>8}{'busy':>10}")
        lines.append("-" * 30)
        for slot, entry in pool.items():
            busy = entry.get("busy_ns", 0)
            lines.append(
                f"{slot:<12}{entry.get('spans', 0):>8}"
                f"{_format_ns(busy if busy else None):>10}"
            )
    executors = stats.get("executors", {})
    if executors:
        lines.append("")
        lines.append(f"{'executor':<16}{'shards':>8}{'busy':>10}")
        lines.append("-" * 34)
        for executor, entry in executors.items():
            busy = entry.get("busy_ns", 0)
            lines.append(
                f"{executor:<16}{entry.get('spans', 0):>8}"
                f"{_format_ns(busy if busy else None):>10}"
            )
    events = stats.get("events", {})
    if events:
        lines.append("")
        lines.append(f"{'event':<40}{'count':>7}")
        lines.append("-" * 47)
        for name, count in events.items():
            lines.append(f"{name:<40}{count:>7}")
    metrics_snapshot = stats.get("metrics", {})
    counters = metrics_snapshot.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<40}{'value':>12}")
        lines.append("-" * 52)
        for name, value in counters.items():
            lines.append(f"{name:<40}{value:>12}")
    gauges = metrics_snapshot.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<40}{'value':>12}")
        lines.append("-" * 52)
        for name, value in gauges.items():
            lines.append(f"{name:<40}{value:>12g}")
    histograms = metrics_snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append(f"{'histogram':<34}{'count':>7}{'mean':>11}{'max':>11}")
        lines.append("-" * 63)
        for name, entry in histograms.items():
            lines.append(
                f"{name:<34}{entry.get('count', 0):>7}"
                f"{entry.get('mean', 0.0):>11.1f}{entry.get('max', 0.0):>11.1f}"
            )
    if stats.get("corrupt_lines"):
        lines.append("")
        lines.append(f"skipped {stats['corrupt_lines']} torn line(s)")
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
