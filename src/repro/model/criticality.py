"""Criticality levels and safety requirements from DO-178B.

The paper (Section 2.1, Table 1) adopts the DO-178B safety standard, which
defines five design-assurance levels ``A`` (highest) through ``E`` (lowest).
Each level carries a probability-of-failure-per-hour (PFH) ceiling that any
function certified at that level must satisfy:

======  =============================
Level   PFH requirement
======  =============================
A       PFH < 1e-9
B       PFH < 1e-7
C       PFH < 1e-5
D       no quantified requirement
E       no quantified requirement
======  =============================

Levels D and E are "not safety-related" in the paper's terminology: no
ceiling constrains their PFH, so such tasks may be killed without
jeopardising system safety.

A *dual-criticality* system (the paper's focus) picks two of these levels
and maps the higher one to the symbolic role ``HI`` and the lower one to
``LO``.  :class:`DualCriticalitySpec` captures that mapping.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = [
    "DO178BLevel",
    "CriticalityRole",
    "DualCriticalitySpec",
    "pfh_requirement",
    "NO_REQUIREMENT",
]

#: Sentinel PFH ceiling for levels without a quantified safety requirement
#: (DO-178B levels D and E).  Any finite PFH trivially satisfies it.
NO_REQUIREMENT: float = math.inf


class DO178BLevel(enum.IntEnum):
    """DO-178B design-assurance level, ordered by importance.

    The integer values are ordered so that comparisons follow criticality:
    ``DO178BLevel.A > DO178BLevel.B > ... > DO178BLevel.E``.
    """

    E = 0
    D = 1
    C = 2
    B = 3
    A = 4

    @property
    def pfh_ceiling(self) -> float:
        """The PFH requirement for this level (Table 1 of the paper).

        Returns :data:`NO_REQUIREMENT` (``inf``) for levels D and E, which
        carry no quantified ceiling.
        """
        return _PFH_CEILINGS[self]

    @property
    def is_safety_related(self) -> bool:
        """Whether this level carries a quantified PFH requirement."""
        return math.isfinite(self.pfh_ceiling)

    @classmethod
    def from_name(cls, name: str) -> "DO178BLevel":
        """Parse a level from its letter name (case-insensitive)."""
        try:
            return cls[name.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown DO-178B level: {name!r}") from None


_PFH_CEILINGS: dict[DO178BLevel, float] = {
    DO178BLevel.A: 1e-9,
    DO178BLevel.B: 1e-7,
    DO178BLevel.C: 1e-5,
    DO178BLevel.D: NO_REQUIREMENT,
    DO178BLevel.E: NO_REQUIREMENT,
}


def pfh_requirement(level: DO178BLevel) -> float:
    """Return the PFH ceiling ``PFH_chi`` for ``level`` (Table 1)."""
    return level.pfh_ceiling


class CriticalityRole(enum.IntEnum):
    """Symbolic role of a task in a dual-criticality system.

    The paper restricts attention to dual-criticality systems where only a
    high (``HI``) and a low (``LO``) criticality exist.  The concrete
    DO-178B levels behind the roles are supplied by
    :class:`DualCriticalitySpec`.
    """

    LO = 0
    HI = 1

    @property
    def other(self) -> "CriticalityRole":
        """The opposite role (``HI`` <-> ``LO``)."""
        return CriticalityRole.LO if self is CriticalityRole.HI else CriticalityRole.HI


@dataclass(frozen=True)
class DualCriticalitySpec:
    """Binding of the symbolic HI/LO roles to concrete DO-178B levels.

    Parameters
    ----------
    hi_level:
        The DO-178B level of all HI-criticality tasks.  The paper assumes
        HI is drawn from {A, B, C} in its examples, but any level strictly
        above ``lo_level`` is accepted.
    lo_level:
        The DO-178B level of all LO-criticality tasks.

    Raises
    ------
    ValueError
        If ``hi_level`` is not strictly more critical than ``lo_level``.
    """

    hi_level: DO178BLevel
    lo_level: DO178BLevel

    def __post_init__(self) -> None:
        if self.hi_level <= self.lo_level:
            raise ValueError(
                f"HI level ({self.hi_level.name}) must be strictly more "
                f"critical than LO level ({self.lo_level.name})"
            )

    def level(self, role: CriticalityRole) -> DO178BLevel:
        """The concrete DO-178B level bound to ``role``."""
        return self.hi_level if role is CriticalityRole.HI else self.lo_level

    def pfh_requirement(self, role: CriticalityRole) -> float:
        """The PFH ceiling ``PFH_chi`` that tasks of ``role`` must satisfy."""
        return self.level(role).pfh_ceiling

    @property
    def lo_is_safety_related(self) -> bool:
        """Whether LO tasks carry a quantified safety requirement.

        For DO-178B levels D and E this is ``False``: such tasks may be
        killed without violating any safety ceiling (Example 3.1).
        """
        return self.lo_level.is_safety_related

    @classmethod
    def from_names(cls, hi: str, lo: str) -> "DualCriticalitySpec":
        """Construct from level letter names, e.g. ``from_names("B", "C")``."""
        return cls(DO178BLevel.from_name(hi), DO178BLevel.from_name(lo))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"HI={self.hi_level.name}, LO={self.lo_level.name}"
