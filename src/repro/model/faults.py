"""Fault model, re-execution profiles and adaptation profiles.

Section 2.1 of the paper: every job of task ``tau_i`` fails (does not
finish properly by its deadline) with probability ``f_i``, due to transient
hardware errors.  Sanity checks detect faulty executions, and a faulty
instance is re-executed.  Any instance of ``tau_i`` executes at most
``n_i`` times; ``n_i`` is the *re-execution profile* of the task and ``N``
collects the profiles of all tasks.

Section 3.3 adds the *killing profile* (Section 3.4: *degradation
profile*; jointly: *adaptation profile*) ``n'_i`` of each HI task: when an
instance of a HI task starts its ``(n'_i + 1)``-th execution, all LO tasks
are killed (or degraded) from then on.  The paper requires
``n'_i in N and n'_i < n_i``; this library additionally admits
``n'_i == n_i``, which encodes "LO tasks are never adapted" (the
``(n_i+1)``-th execution never occurs by assumption), a convenient fixed
point for the search in Algorithm 1.

:class:`ReexecutionProfile` and :class:`AdaptationProfile` are thin mappings
from task name to the integer profile with validation and convenience
constructors for the paper's uniform-profile restriction (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.model.criticality import CriticalityRole
from repro.model.task import Task, TaskSet

__all__ = [
    "ReexecutionProfile",
    "AdaptationProfile",
    "round_failure_probability",
    "round_success_probability",
]


def round_failure_probability(failure_probability: float, executions: int) -> float:
    """Probability ``f_i^{n}`` that one *round* of a job fails.

    A round is ``executions`` attempts of one job; it fails only if every
    attempt fails, which under independent transient faults happens with
    probability ``f_i**n`` (used throughout eqs. (2), (3), (5)-(7)).
    """
    if executions < 1:
        raise ValueError(f"executions must be >= 1, got {executions}")
    if not 0.0 <= failure_probability < 1.0:
        raise ValueError(f"failure probability out of [0,1): {failure_probability}")
    return failure_probability**executions


def round_success_probability(failure_probability: float, executions: int) -> float:
    """Probability ``1 - f_i^{n}`` that a round succeeds within ``n`` tries."""
    return 1.0 - round_failure_probability(failure_probability, executions)


class _IntProfile:
    """Shared machinery of the two profile mappings (task name -> int)."""

    _minimum: int = 1
    _label: str = "profile"

    def __init__(self, values: Mapping[str, int]) -> None:
        cleaned: dict[str, int] = {}
        for name, value in values.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(
                    f"{self._label} for {name!r} must be an int, got {value!r}"
                )
            if value < self._minimum:
                raise ValueError(
                    f"{self._label} for {name!r} must be >= {self._minimum}, got {value}"
                )
            cleaned[name] = value
        self._values = cleaned

    def __getitem__(self, task: Task | str) -> int:
        name = task.name if isinstance(task, Task) else task
        return self._values[name]

    def __contains__(self, task: Task | str) -> bool:
        name = task.name if isinstance(task, Task) else task
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _IntProfile):
            return NotImplemented
        return type(self) is type(other) and self._values == other._values

    def __hash__(self) -> int:
        return hash((type(self), tuple(sorted(self._values.items()))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"{type(self).__name__}({inner})"

    def items(self):
        return self._values.items()

    def as_dict(self) -> dict[str, int]:
        return dict(self._values)

    def get(self, task: Task | str, default: int | None = None) -> int | None:
        name = task.name if isinstance(task, Task) else task
        return self._values.get(name, default)


class ReexecutionProfile(_IntProfile):
    """``N = {n_i}``: maximal number of executions of any instance of each task.

    ``n_i = 1`` means no re-execution (a job runs once); ``n_i = 3`` means
    up to two re-executions after the initial attempt.
    """

    _minimum = 1
    _label = "re-execution profile"

    @classmethod
    def uniform(cls, taskset: TaskSet, n_hi: int, n_lo: int) -> "ReexecutionProfile":
        """The paper's Section 4.2 restriction: one ``n`` per criticality.

        Every HI task receives ``n_hi`` and every LO task ``n_lo``.
        """
        values = {
            t.name: (n_hi if t.criticality is CriticalityRole.HI else n_lo)
            for t in taskset
        }
        return cls(values)

    @classmethod
    def constant(cls, tasks: Iterable[Task], n: int) -> "ReexecutionProfile":
        """Every listed task receives the same profile ``n``."""
        return cls({t.name: n for t in tasks})

    def validate_for(self, taskset: TaskSet) -> None:
        """Check that a profile is defined for every task in ``taskset``."""
        missing = [t.name for t in taskset if t.name not in self]
        if missing:
            raise ValueError(f"re-execution profile missing tasks: {missing}")


class AdaptationProfile(_IntProfile):
    """``N'_HI = {n'_i}``: killing/degradation profile of the HI tasks.

    When any instance of HI task ``tau_i`` starts its ``(n'_i + 1)``-th
    execution, all LO tasks are killed or degraded thereafter.
    """

    _minimum = 1
    _label = "adaptation profile"

    @classmethod
    def uniform(cls, taskset: TaskSet, n_prime: int) -> "AdaptationProfile":
        """One adaptation profile shared by every HI task (Section 4.2)."""
        return cls({t.name: n_prime for t in taskset.hi_tasks})

    def validate_for(self, taskset: TaskSet, reexecution: ReexecutionProfile) -> None:
        """Check coverage of all HI tasks and ``n'_i <= n_i``.

        The paper states ``n'_i < n_i``; we accept equality as the "never
        adapt" encoding (see module docstring) but never more.
        """
        for t in taskset.hi_tasks:
            if t.name not in self:
                raise ValueError(f"adaptation profile missing HI task {t.name!r}")
            if t.name in reexecution and self[t] > reexecution[t]:
                raise ValueError(
                    f"adaptation profile for {t.name!r} ({self[t]}) exceeds its "
                    f"re-execution profile ({reexecution[t]})"
                )


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Bundle of the fault-tolerance knobs selected for one system.

    Groups the re-execution profile, the adaptation profile, the adaptation
    *mechanism* (kill vs. degrade) and, for degradation, the factor ``df``.
    Consumed by the simulator and the experiment drivers.
    """

    reexecution: ReexecutionProfile
    adaptation: AdaptationProfile | None = None
    degradation_factor: float | None = None

    def __post_init__(self) -> None:
        if self.degradation_factor is not None and self.degradation_factor <= 1.0:
            raise ValueError(
                f"degradation factor must be > 1, got {self.degradation_factor}"
            )

    @property
    def mechanism(self) -> str:
        """``"none"``, ``"kill"`` or ``"degrade"``."""
        if self.adaptation is None:
            return "none"
        return "degrade" if self.degradation_factor is not None else "kill"


__all__.append("FaultToleranceConfig")
