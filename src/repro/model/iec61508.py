"""IEC 61508 safety-integrity levels (library extension).

The paper's safety metric (PFH, averaged over the operation duration) is
shared between DO-178B and IEC 61508; Section 2.1 cites both and the
evaluation sticks to DO-178B.  For completeness — and because industrial
users of this library may certify against IEC 61508 instead — this module
provides the SIL table for *high-demand / continuous* mode of operation:

=====  ==========================
SIL    PFH requirement
=====  ==========================
4      1e-9 <= PFH < 1e-8
3      1e-8 <= PFH < 1e-7
2      1e-7 <= PFH < 1e-6
1      1e-6 <= PFH < 1e-5
=====  ==========================

Only the upper bound constrains a design; :meth:`SIL.pfh_ceiling` returns
it so a SIL can be used anywhere a DO-178B ceiling is, e.g. through
:func:`sil_dual_spec`.
"""

from __future__ import annotations

import enum

from repro.model.criticality import DO178BLevel, DualCriticalitySpec

__all__ = ["SIL", "sil_to_do178b", "sil_dual_spec"]


class SIL(enum.IntEnum):
    """IEC 61508 safety integrity level (high-demand / continuous mode)."""

    SIL1 = 1
    SIL2 = 2
    SIL3 = 3
    SIL4 = 4

    @property
    def pfh_ceiling(self) -> float:
        """The (exclusive) PFH upper bound of the level."""
        return _CEILINGS[self]

    @property
    def pfh_floor(self) -> float:
        """The (inclusive) PFH lower bound of the level's band."""
        return _CEILINGS[self] / 10.0


_CEILINGS: dict[SIL, float] = {
    SIL.SIL1: 1e-5,
    SIL.SIL2: 1e-6,
    SIL.SIL3: 1e-7,
    SIL.SIL4: 1e-8,
}


def sil_to_do178b(sil: SIL) -> DO178BLevel:
    """The closest DO-178B level whose ceiling is at least as strict.

    A conservative mapping: the returned level's PFH requirement implies
    the SIL's.  SIL4 (< 1e-8) maps to level A (< 1e-9); SIL3 (< 1e-7) to
    level B; SIL2 (< 1e-6) to level B as well (level C's 1e-5 would be too
    lax); SIL1 (< 1e-5) to level C.
    """
    if sil is SIL.SIL4:
        return DO178BLevel.A
    if sil in (SIL.SIL3, SIL.SIL2):
        return DO178BLevel.B
    return DO178BLevel.C


def sil_dual_spec(hi: SIL, lo: SIL) -> DualCriticalitySpec:
    """A dual-criticality spec from two SILs via the conservative mapping.

    Raises ``ValueError`` when both SILs collapse onto the same DO-178B
    level (the mapping is not injective).
    """
    return DualCriticalitySpec(sil_to_do178b(hi), sil_to_do178b(lo))
