"""Sporadic task model (Section 2.1 of the paper).

A task :class:`Task` is a sporadic task ``tau_i = (T_i, D_i, C_i, chi_i)``
scheduled on a uniprocessor:

- ``period`` (``T_i``): minimal inter-arrival time of successive jobs;
- ``deadline`` (``D_i``): relative deadline (arbitrary deadlines allowed);
- ``wcet`` (``C_i``): worst-case execution time of a *single* execution
  (re-executions multiply this, see :mod:`repro.model.faults`);
- ``criticality`` (``chi_i``): the symbolic HI/LO role;
- ``failure_probability`` (``f_i``): probability that one job does not
  finish properly (transient hardware fault), per the paper's fault model.

:class:`TaskSet` aggregates tasks together with the
:class:`~repro.model.criticality.DualCriticalitySpec` that binds HI/LO to
concrete DO-178B levels, and provides the utilization queries used
throughout the schedulability analyses.

All time quantities are expressed in **milliseconds** by convention (the
unit used in every table of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator, Sequence

from repro.lint.checks import check_task_fields, check_unique_names, raise_on_error
from repro.model.criticality import CriticalityRole, DualCriticalitySpec

__all__ = ["Task", "TaskSet", "HOUR_MS"]

#: One hour expressed in the library's canonical time unit (milliseconds).
HOUR_MS: float = 3_600_000.0


@dataclass(frozen=True)
class Task:
    """One independent sporadic task.

    Parameters mirror Section 2.1.  ``name`` is a free-form identifier used
    in traces and reports; it must be unique within a :class:`TaskSet`.
    """

    name: str
    period: float
    deadline: float
    wcet: float
    criticality: CriticalityRole
    failure_probability: float = 0.0

    def __post_init__(self) -> None:
        # Validation is shared with the lint rules (repro.lint.checks) so
        # the constructor and `ftmc lint` reject inputs with one message.
        raise_on_error(
            check_task_fields(
                self.name,
                self.period,
                self.deadline,
                self.wcet,
                self.failure_probability,
            )
        )

    @property
    def utilization(self) -> float:
        """``C_i / T_i`` for a single execution (no re-executions)."""
        return self.wcet / self.period

    @property
    def density(self) -> float:
        """``C_i / min(D_i, T_i)``, the classical density of the task."""
        return self.wcet / min(self.deadline, self.period)

    @property
    def is_implicit_deadline(self) -> bool:
        """Whether ``D_i == T_i``."""
        return math.isclose(self.deadline, self.period)

    @property
    def is_constrained_deadline(self) -> bool:
        """Whether ``D_i <= T_i``."""
        return self.deadline <= self.period or self.is_implicit_deadline

    def with_period(self, period: float) -> "Task":
        """A copy of the task with a new minimal inter-arrival time.

        Used by the service-degradation mechanism, which stretches
        ``T_i`` to ``df * T_i`` for LO tasks (Section 3.4).  The relative
        deadline is left untouched, matching the paper's model where only
        the inter-arrival time is degraded.
        """
        return replace(self, period=period)

    def scaled_wcet(self, executions: int) -> float:
        """Cumulative WCET of ``executions`` back-to-back executions."""
        if executions < 0:
            raise ValueError(f"executions must be non-negative, got {executions}")
        return executions * self.wcet


class TaskSet:
    """An ordered, named collection of sporadic tasks plus the HI/LO spec.

    The class is deliberately immutable-ish: mutating operations return new
    ``TaskSet`` instances so that analyses can cache derived quantities.
    """

    def __init__(
        self,
        tasks: Iterable[Task],
        spec: DualCriticalitySpec | None = None,
        name: str = "taskset",
    ) -> None:
        self._tasks: tuple[Task, ...] = tuple(tasks)
        self.spec = spec
        self.name = name
        raise_on_error(check_unique_names([t.name for t in self._tasks]))

    # -- collection protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskSet({self.name!r}, n={len(self)}, U={self.utilization():.4f})"

    @property
    def tasks(self) -> tuple[Task, ...]:
        return self._tasks

    def task(self, name: str) -> Task:
        """Look a task up by name."""
        for t in self._tasks:
            if t.name == name:
                return t
        raise KeyError(name)

    # -- criticality partitions ----------------------------------------------

    def by_criticality(self, role: CriticalityRole) -> tuple[Task, ...]:
        """All tasks of the given criticality role (``tau_chi``)."""
        return tuple(t for t in self._tasks if t.criticality is role)

    @property
    def hi_tasks(self) -> tuple[Task, ...]:
        return self.by_criticality(CriticalityRole.HI)

    @property
    def lo_tasks(self) -> tuple[Task, ...]:
        return self.by_criticality(CriticalityRole.LO)

    # -- aggregate quantities --------------------------------------------------

    def utilization(self, role: CriticalityRole | None = None) -> float:
        """Total single-execution utilization ``U_chi = sum C_i/T_i``.

        With ``role=None`` the sum ranges over all tasks.
        """
        tasks = self._tasks if role is None else self.by_criticality(role)
        return sum(t.utilization for t in tasks)

    def scaled_utilization(
        self, role: CriticalityRole, executions_of: Callable[[Task], int]
    ) -> float:
        """``sum n_i * C_i / T_i`` over tasks of ``role``.

        ``executions_of`` maps each task to its execution count ``n_i``.
        """
        return sum(executions_of(t) * t.utilization for t in self.by_criticality(role))

    @property
    def is_implicit_deadline(self) -> bool:
        return all(t.is_implicit_deadline for t in self._tasks)

    @property
    def is_constrained_deadline(self) -> bool:
        return all(t.is_constrained_deadline for t in self._tasks)

    def hyperperiod(self) -> float:
        """Least common multiple of all task periods.

        Only meaningful when periods are (near-)integers; raises
        ``ValueError`` otherwise.  Used by simulation helpers to choose
        horizons.
        """
        lcm = 1
        for t in self._tasks:
            p = round(t.period)
            if not math.isclose(p, t.period, rel_tol=1e-9, abs_tol=1e-9) or p <= 0:
                raise ValueError(
                    f"hyperperiod undefined for non-integer period {t.period}"
                )
            lcm = lcm * p // math.gcd(lcm, p)
        return float(lcm)

    # -- derivation -------------------------------------------------------------

    def with_tasks(self, tasks: Sequence[Task], name: str | None = None) -> "TaskSet":
        """A new set with replaced task list but the same spec."""
        return TaskSet(tasks, spec=self.spec, name=name or self.name)

    def with_spec(self, spec: DualCriticalitySpec) -> "TaskSet":
        """A new set with the same tasks bound to a different HI/LO spec."""
        return TaskSet(self._tasks, spec=spec, name=self.name)

    def degraded(self, factor: float) -> "TaskSet":
        """The set with every LO task's period stretched by ``factor``.

        Models the paper's service degradation: ``T_hat_i = df * T_i`` for
        all LO tasks (Section 3.4).  HI tasks are untouched.
        """
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {factor}")
        tasks = [
            t.with_period(t.period * factor) if t.criticality is CriticalityRole.LO else t
            for t in self._tasks
        ]
        return TaskSet(tasks, spec=self.spec, name=f"{self.name}/df={factor:g}")

    def describe(self) -> str:
        """A small human-readable table of the task parameters."""
        header = f"{'task':<10}{'chi':<5}{'T':>10}{'D':>10}{'C':>10}{'f':>12}"
        rows = [header, "-" * len(header)]
        for t in self._tasks:
            rows.append(
                f"{t.name:<10}{t.criticality.name:<5}{t.period:>10.6g}"
                f"{t.deadline:>10.6g}{t.wcet:>10.6g}{t.failure_probability:>12.3g}"
            )
        rows.append(
            f"U = {self.utilization():.5f} "
            f"(HI {self.utilization(CriticalityRole.HI):.5f}, "
            f"LO {self.utilization(CriticalityRole.LO):.5f})"
        )
        return "\n".join(rows)
