"""Deriving per-job failure probabilities from physical fault rates.

The paper takes the per-job failure probability ``f_i`` as given (its
experiments use the constant 1e-5).  In practice ``f_i`` comes from a
hardware transient-fault *rate*: soft errors arrive as a Poisson process
with rate ``lambda`` (events per hour, e.g. from neutron-flux / SER data),
and an execution of length ``C_i`` is corrupted when at least one event
hits it:

    ``f_i = 1 - exp(-lambda * C_i)``

These helpers convert between the two parameterisations so users can
populate the model from datasheet numbers, and attach the derived
probabilities to a task set.
"""

from __future__ import annotations

import math

from repro.model.task import HOUR_MS, Task, TaskSet

__all__ = [
    "failure_probability_from_rate",
    "rate_from_failure_probability",
    "with_fault_rate",
]


def failure_probability_from_rate(
    faults_per_hour: float, execution_time_ms: float
) -> float:
    """``f = 1 - exp(-lambda * C)`` for a Poisson transient-fault process.

    Parameters
    ----------
    faults_per_hour:
        The raw transient-fault rate ``lambda`` (events per hour).
    execution_time_ms:
        The execution window length ``C`` in milliseconds.
    """
    if faults_per_hour < 0:
        raise ValueError(f"fault rate must be non-negative, got {faults_per_hour}")
    if execution_time_ms < 0:
        raise ValueError(
            f"execution time must be non-negative, got {execution_time_ms}"
        )
    exposure_hours = execution_time_ms / HOUR_MS
    return -math.expm1(-faults_per_hour * exposure_hours)


def rate_from_failure_probability(
    failure_probability: float, execution_time_ms: float
) -> float:
    """Invert :func:`failure_probability_from_rate`.

    Returns the Poisson rate (events/hour) that makes an execution of the
    given length fail with the given probability.
    """
    if not 0.0 <= failure_probability < 1.0:
        raise ValueError(
            f"failure probability must be in [0, 1), got {failure_probability}"
        )
    if execution_time_ms <= 0:
        raise ValueError(
            f"execution time must be positive, got {execution_time_ms}"
        )
    exposure_hours = execution_time_ms / HOUR_MS
    return -math.log1p(-failure_probability) / exposure_hours


def with_fault_rate(taskset: TaskSet, faults_per_hour: float) -> TaskSet:
    """A copy of ``taskset`` with ``f_i`` derived from one hardware rate.

    Longer tasks receive proportionally larger failure probabilities —
    the physically-grounded refinement of the paper's constant-``f_i``
    assumption.
    """
    tasks = [
        Task(
            name=t.name,
            period=t.period,
            deadline=t.deadline,
            wcet=t.wcet,
            criticality=t.criticality,
            failure_probability=failure_probability_from_rate(
                faults_per_hour, t.wcet
            ),
        )
        for t in taskset
    ]
    return TaskSet(
        tasks, spec=taskset.spec, name=f"{taskset.name}/rate={faults_per_hour:g}"
    )
