"""Conventional (Vestal-style) mixed-criticality task model (Section 2.2).

Vestal's model characterises each task by a vector of WCETs, one per
criticality level, non-decreasing with the level: ``C_i(LO) <= C_i(HI)``.
At runtime, whenever any task exceeds its LO-criticality WCET, the system
switches to HI mode; thereafter only HI tasks are guaranteed, and LO tasks
are killed or degraded.

This module hosts :class:`MCTask` / :class:`MCTaskSet` for the
dual-criticality case, including the criticality-specific utilizations
``U_{chi1}^{chi2} = sum_{chi_i = chi1} C_i(chi2) / T_i`` that the EDF-VD
family of tests consumes (Appendix B of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.lint.checks import (
    check_mc_task_fields,
    check_unique_names,
    raise_on_error,
)
from repro.model.criticality import CriticalityRole

__all__ = ["MCTask", "MCTaskSet"]


@dataclass(frozen=True)
class MCTask:
    """A dual-criticality sporadic task with per-level WCETs.

    ``wcet_lo``/``wcet_hi`` are ``C_i(LO)`` and ``C_i(HI)``.  For LO tasks
    the model requires ``C_i(LO) == C_i(HI)`` (a LO task is never executed
    beyond its own criticality level's budget); the constructor enforces the
    Vestal monotonicity ``C_i(LO) <= C_i(HI)`` for HI tasks.
    """

    name: str
    period: float
    deadline: float
    wcet_lo: float
    wcet_hi: float
    criticality: CriticalityRole

    def __post_init__(self) -> None:
        # Validation is shared with the lint rules (repro.lint.checks) so
        # the constructor and `ftmc lint` reject inputs with one message.
        raise_on_error(
            check_mc_task_fields(
                self.name,
                self.period,
                self.deadline,
                self.wcet_lo,
                self.wcet_hi,
                self.criticality,
            )
        )

    def wcet(self, level: CriticalityRole) -> float:
        """``C_i(chi)`` for ``chi in {LO, HI}``."""
        return self.wcet_hi if level is CriticalityRole.HI else self.wcet_lo

    def utilization(self, level: CriticalityRole) -> float:
        """``C_i(chi) / T_i``."""
        return self.wcet(level) / self.period

    @property
    def is_implicit_deadline(self) -> bool:
        return math.isclose(self.deadline, self.period)


class MCTaskSet:
    """A dual-criticality task set in the conventional (Vestal) model.

    Instances are **frozen after construction**: attribute assignment
    raises :class:`AttributeError`.  The freeze is what makes the lazy
    :meth:`cache_key` memo sound — a mutable set could compute its key,
    be mutated, and then serve every backend a stale cached verdict for
    the rest of a resident process's lifetime.  Derive modified sets by
    constructing new ones instead.
    """

    def __init__(self, tasks: Iterable[MCTask], name: str = "mc-taskset") -> None:
        self._tasks: tuple[MCTask, ...] = tuple(tasks)
        self.name = name
        self._cache_key: tuple | None = None
        raise_on_error(check_unique_names([t.name for t in self._tasks]))
        self._frozen = True

    def __setattr__(self, attr: str, value: object) -> None:
        if getattr(self, "_frozen", False):
            raise AttributeError(
                f"MCTaskSet is frozen: cannot assign {attr!r} after "
                "construction (build a new set instead — cached "
                "schedulability verdicts are keyed on the parameters "
                "at construction time)"
            )
        object.__setattr__(self, attr, value)

    def __iter__(self) -> Iterator[MCTask]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, index: int) -> MCTask:
        return self._tasks[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MCTaskSet({self.name!r}, n={len(self)})"

    @property
    def tasks(self) -> tuple[MCTask, ...]:
        return self._tasks

    def cache_key(self) -> tuple:
        """Hashable identity of the *analysed* parameters.

        Every schedulability test in :mod:`repro.analysis` is a function of
        the tuple ``(T, D, C(LO), C(HI), chi)`` per task (names and the set
        name are ignored), so two sets with equal keys are interchangeable
        to any backend — the contract behind
        :meth:`repro.core.backends.SchedulerBackend.is_schedulable_cached`.
        Computed lazily and memoized — sound because the set is frozen
        (see the class docstring); the memo write itself goes through
        ``object.__setattr__`` to bypass the freeze.
        """
        key = self._cache_key
        if key is None:
            key = tuple(
                (t.period, t.deadline, t.wcet_lo, t.wcet_hi, t.criticality)
                for t in self._tasks
            )
            object.__setattr__(self, "_cache_key", key)
        return key

    def task(self, name: str) -> MCTask:
        for t in self._tasks:
            if t.name == name:
                return t
        raise KeyError(name)

    def by_criticality(self, role: CriticalityRole) -> tuple[MCTask, ...]:
        return tuple(t for t in self._tasks if t.criticality is role)

    @property
    def hi_tasks(self) -> tuple[MCTask, ...]:
        return self.by_criticality(CriticalityRole.HI)

    @property
    def lo_tasks(self) -> tuple[MCTask, ...]:
        return self.by_criticality(CriticalityRole.LO)

    @property
    def is_implicit_deadline(self) -> bool:
        return all(t.is_implicit_deadline for t in self._tasks)

    def utilization(
        self, of_criticality: CriticalityRole, at_level: CriticalityRole
    ) -> float:
        """``U_{chi1}^{chi2}``: utilization of ``chi1`` tasks with ``chi2`` WCETs.

        In the paper's notation (Appendix B), ``U_HI^LO`` is
        ``utilization(HI, LO)``: the total utilization of the HI tasks when
        each is budgeted its LO-criticality WCET.
        """
        return sum(
            t.utilization(at_level) for t in self.by_criticality(of_criticality)
        )

    # Convenience aliases matching the paper's symbols -------------------------

    @property
    def u_hi_lo(self) -> float:
        """``U_HI^LO``."""
        return self.utilization(CriticalityRole.HI, CriticalityRole.LO)

    @property
    def u_hi_hi(self) -> float:
        """``U_HI^HI``."""
        return self.utilization(CriticalityRole.HI, CriticalityRole.HI)

    @property
    def u_lo_lo(self) -> float:
        """``U_LO^LO``."""
        return self.utilization(CriticalityRole.LO, CriticalityRole.LO)

    @property
    def u_lo_hi(self) -> float:
        """``U_LO^HI`` (equals ``U_LO^LO`` in this library's model)."""
        return self.utilization(CriticalityRole.LO, CriticalityRole.HI)

    def describe(self) -> str:
        """Human-readable table mirroring Table 3 of the paper."""
        header = f"{'task':<10}{'chi':<5}{'T':>10}{'D':>10}{'C(LO)':>10}{'C(HI)':>10}"
        rows = [header, "-" * len(header)]
        for t in self._tasks:
            rows.append(
                f"{t.name:<10}{t.criticality.name:<5}{t.period:>10.6g}"
                f"{t.deadline:>10.6g}{t.wcet_lo:>10.6g}{t.wcet_hi:>10.6g}"
            )
        rows.append(
            f"U_HI^LO={self.u_hi_lo:.5f} U_HI^HI={self.u_hi_hi:.5f} "
            f"U_LO^LO={self.u_lo_lo:.5f}"
        )
        return "\n".join(rows)
