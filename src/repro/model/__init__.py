"""Task, criticality, fault and mixed-criticality models (Section 2)."""

from repro.model.criticality import (
    NO_REQUIREMENT,
    CriticalityRole,
    DO178BLevel,
    DualCriticalitySpec,
    pfh_requirement,
)
from repro.model.fault_rates import (
    failure_probability_from_rate,
    rate_from_failure_probability,
    with_fault_rate,
)
from repro.model.faults import (
    AdaptationProfile,
    FaultToleranceConfig,
    ReexecutionProfile,
    round_failure_probability,
    round_success_probability,
)
from repro.model.iec61508 import SIL, sil_dual_spec, sil_to_do178b
from repro.model.mc_task import MCTask, MCTaskSet
from repro.model.task import HOUR_MS, Task, TaskSet

__all__ = [
    "failure_probability_from_rate",
    "rate_from_failure_probability",
    "with_fault_rate",
    "SIL",
    "sil_dual_spec",
    "sil_to_do178b",
    "NO_REQUIREMENT",
    "CriticalityRole",
    "DO178BLevel",
    "DualCriticalitySpec",
    "pfh_requirement",
    "AdaptationProfile",
    "FaultToleranceConfig",
    "ReexecutionProfile",
    "round_failure_probability",
    "round_success_probability",
    "MCTask",
    "MCTaskSet",
    "HOUR_MS",
    "Task",
    "TaskSet",
]
