"""Profile searches of Algorithm 1 (FT-S), lines 2, 4 and 8.

Under the uniform-profile restriction of Section 4.2 (one ``n`` per
criticality, one ``n'`` shared by all HI tasks) the three searches are
one-dimensional:

- line 2: ``n_chi = inf{n : pfh(chi) <= PFH_chi}`` via eq. (2);
- line 4: ``n1_HI = inf{n' : pfh(LO) < PFH_LO}`` via eq. (5) (killing) or
  eq. (7) (degradation) — the smallest adaptation profile that keeps the
  LO level safe;
- line 8: ``n2_HI = sup{n' : Gamma(n_HI, n_LO, n') schedulable by S}`` —
  the largest adaptation profile the scheduler can absorb.

Both pfh-based searches exploit monotonicity in ``n'`` (Lemmas 3.3/3.4:
larger adaptation profiles can only improve LO safety); the schedulability
search exploits the backend's monotonicity (smaller ``n'`` can only help).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.analysis import kernels
from repro.core.backends import SchedulerBackend
from repro.core.conversion import convert_uniform_series
from repro.model.criticality import CriticalityRole
from repro.model.faults import AdaptationProfile, ReexecutionProfile
from repro.model.task import TaskSet
from repro.obs import metrics as obs_metrics
from repro.obs.trace import register_fork_reset
from repro.safety.degradation import pfh_lo_degradation, pfh_lo_degradation_uniform
from repro.safety.killing import pfh_lo_killing, pfh_lo_killing_uniform
from repro.safety.pfh import DEFAULT_MAX_REEXECUTIONS, minimal_uniform_reexecution

__all__ = [
    "ReexecutionProfiles",
    "minimal_reexecution_profiles",
    "pfh_lo_adapted",
    "minimal_adaptation_profile",
    "maximal_adaptation_profile",
]


@dataclass(frozen=True)
class ReexecutionProfiles:
    """The uniform re-execution profiles ``(n_HI, n_LO)`` of line 2."""

    n_hi: int
    n_lo: int


#: Memo for :func:`minimal_reexecution_profiles`: the line-2 search depends
#: only on the task set and the ``(max_n, assume_full_wcet)`` knobs, and the
#: experiment drivers call it repeatedly for the same set (once per FT-S
#: invocation, several invocations per sweep point).  Keyed weakly by the
#: task-set object so retiring a generated set frees its entry.
_reexecution_memo: "weakref.WeakKeyDictionary[TaskSet, dict]" = (
    weakref.WeakKeyDictionary()
)
# Fork safety (FTMCF rules): forked campaign workers must not inherit the
# parent's memo pages — same treatment as ``killing._timing_points_cached``.
register_fork_reset(_reexecution_memo.clear)


def minimal_reexecution_profiles(
    taskset: TaskSet,
    max_n: int = DEFAULT_MAX_REEXECUTIONS,
    assume_full_wcet: bool = True,
) -> ReexecutionProfiles | None:
    """Line 2 of Algorithm 1: minimal ``n_chi`` meeting each PFH ceiling.

    Uses the ceilings bound by the task set's
    :class:`~repro.model.criticality.DualCriticalitySpec`.  Returns
    ``None`` when some level cannot be made safe within ``max_n``
    re-executions (FT-S then fails regardless of scheduling).

    Memoized per task-set object (task sets are immutable after
    construction); the underlying per-level searches stay pure.
    """
    if taskset.spec is None:
        raise ValueError("task set has no dual-criticality spec attached")
    memo = _reexecution_memo.setdefault(taskset, {})
    # The spec is part of the key: rebinding a different spec to an equal
    # set must not serve the previous spec's profile.  So is the kernel
    # tier — the vectorized and scalar line-2 searches are only
    # verdict-equivalent up to the tolerance contract, and a memo that
    # conflated them would defeat the toggles as diagnostics.
    knobs = (
        max_n,
        assume_full_wcet,
        taskset.spec,
        kernels.kernel_tier(),
        kernels.batch_enabled(),
    )
    if knobs in memo:
        obs_metrics.inc("core.profile_memo.hits")
        return memo[knobs]
    obs_metrics.inc("core.profile_memo.misses")
    result = _minimal_reexecution_profiles(taskset, max_n, assume_full_wcet)
    memo[knobs] = result
    return result


def _minimal_reexecution_profiles(
    taskset: TaskSet, max_n: int, assume_full_wcet: bool
) -> ReexecutionProfiles | None:
    profiles = {}
    for role in (CriticalityRole.HI, CriticalityRole.LO):
        ceiling = taskset.spec.pfh_requirement(role)
        n = minimal_uniform_reexecution(
            taskset, role, ceiling, max_n=max_n, assume_full_wcet=assume_full_wcet
        )
        if n is None:
            return None
        profiles[role] = n
    return ReexecutionProfiles(
        n_hi=profiles[CriticalityRole.HI], n_lo=profiles[CriticalityRole.LO]
    )


def pfh_lo_adapted(
    taskset: TaskSet,
    n_hi: int,
    n_lo: int,
    n_prime: int,
    mechanism: str,
    operation_hours: float,
    assume_full_wcet: bool = True,
) -> float:
    """LO-level PFH bound with uniform profiles, under kill or degrade.

    Dispatches to eq. (5) (``mechanism="kill"``) or eq. (7)
    (``mechanism="degrade"``).
    """
    if mechanism not in ("kill", "degrade"):
        raise ValueError(f"unknown adaptation mechanism: {mechanism!r}")
    if kernels.batch_enabled() and 1 <= n_prime <= n_hi:
        # The uniform-candidate evaluators share one gathered context per
        # task set and memoize each candidate, so the line-4 scan and the
        # final evaluation at the adopted profile share the computation.
        if mechanism == "kill":
            return pfh_lo_killing_uniform(
                taskset, n_hi, n_lo, n_prime, operation_hours, assume_full_wcet
            )
        return pfh_lo_degradation_uniform(
            taskset, n_hi, n_lo, n_prime, operation_hours, assume_full_wcet
        )
    reexecution = ReexecutionProfile.uniform(taskset, n_hi, n_lo)
    adaptation = AdaptationProfile.uniform(taskset, n_prime)
    if mechanism == "kill":
        return pfh_lo_killing(
            taskset, reexecution, adaptation, operation_hours, assume_full_wcet
        )
    return pfh_lo_degradation(
        taskset, reexecution, adaptation, operation_hours, assume_full_wcet
    )


def minimal_adaptation_profile(
    taskset: TaskSet,
    n_hi: int,
    n_lo: int,
    mechanism: str,
    operation_hours: float,
    assume_full_wcet: bool = True,
) -> int | None:
    """Line 4 of Algorithm 1: ``n1_HI = inf{n' : pfh(LO) < PFH_LO}``.

    Searches ``n'`` in ``1..n_HI``.  When the LO level carries no
    quantified requirement (DO-178B levels D/E) the infimum is trivially 1.
    Returns ``None`` when even ``n' = n_HI`` leaves the LO level unsafe
    (FT-S line 5/6: FAILURE).
    """
    if taskset.spec is None:
        raise ValueError("task set has no dual-criticality spec attached")
    ceiling = taskset.spec.pfh_requirement(CriticalityRole.LO)
    if not taskset.spec.lo_is_safety_related or not taskset.lo_tasks:
        return 1
    if kernels.batch_enabled():
        if mechanism == "kill":
            evaluate = pfh_lo_killing_uniform
        elif mechanism == "degrade":
            evaluate = pfh_lo_degradation_uniform
        else:
            raise ValueError(f"unknown adaptation mechanism: {mechanism!r}")
        # Monotone pre-check (Lemmas 3.3/3.4: pfh(LO) is non-increasing in
        # n'): when even the largest candidate misses the ceiling the whole
        # scan is FAILURE, for the cost of one evaluation instead of n_HI.
        # The value is memoized, so a scan that does succeed gets this
        # evaluation back at its last candidate — and usually again at the
        # adopted-profile evaluation of ft_schedule.
        if (
            evaluate(
                taskset, n_hi, n_lo, n_hi, operation_hours, assume_full_wcet
            )
            >= ceiling
        ):
            return None
        for n_prime in range(1, n_hi + 1):
            value = evaluate(
                taskset, n_hi, n_lo, n_prime, operation_hours, assume_full_wcet
            )
            if value < ceiling:
                return n_prime
        return None
    for n_prime in range(1, n_hi + 1):
        value = pfh_lo_adapted(
            taskset, n_hi, n_lo, n_prime, mechanism, operation_hours,
            assume_full_wcet,
        )
        if value < ceiling:
            return n_prime
    return None


def maximal_adaptation_profile(
    taskset: TaskSet, n_hi: int, n_lo: int, backend: SchedulerBackend
) -> int | None:
    """Line 8 of Algorithm 1: ``n2_HI = sup{n' : Gamma(...) schedulable}``.

    Scans ``n'`` downward from ``n_HI`` and returns the first schedulable
    profile (the supremum, by the backend's monotonicity).  Returns
    ``None`` when even the earliest possible adaptation (``n' = 1``)
    cannot be scheduled.

    The converted sets come from
    :func:`~repro.core.conversion.convert_uniform_series` (the profiles
    are validated once and the LO tasks shared across the scan — only the
    HI budgets change with ``n'``), and the verdicts go through the
    backend's shared memo: neighbouring sweep points revisit most of the
    same ``(n_hi, n_lo, n')`` triples.

    With the sweep-batch tier active, backends that implement
    :meth:`~repro.core.backends.SchedulerBackend.schedulable_uniform_series`
    verdict the whole candidate series analytically — no ``MCTaskSet``
    objects are built, but every candidate still probes and populates the
    shared verdict memo under the key the converted set would have used.
    """
    if kernels.batch_enabled():
        series = backend.schedulable_uniform_series(
            taskset, n_hi, n_lo, range(n_hi, 0, -1)
        )
        if series is not None:
            for n_prime, ok in zip(range(n_hi, 0, -1), series):
                if ok:
                    return n_prime
            return None
    for n_prime, mc in convert_uniform_series(
        taskset, n_hi, n_lo, range(n_hi, 0, -1)
    ):
        if backend.is_schedulable_cached(mc):
            return n_prime
    return None
