"""Problem conversion (Section 4.1, Lemma 4.1).

The central insight of the paper: re-execution generates a list of
cumulative WCETs for a task, so "kill/degrade LO tasks when a HI instance
starts its ``(n'+1)``-th execution" can be conservatively re-read as "...
when a HI task exceeds ``n' * C_i`` units of execution".  This turns the
fault-tolerant problem into a *conventional* mixed-criticality task set:

- each HI task ``tau_i`` gets ``C_i(HI) = n_i * C_i`` and
  ``C_i(LO) = n'_i * C_i``;
- each LO task ``tau_i`` gets ``C_i(LO) = C_i(HI) = n_i * C_i``.

Example 4.1 / Table 3 of the paper instantiate this for the Example 3.1
task set.  The conversion is conservative: a HI instance observed past
``n' * C_i`` of execution is certainly in its ``(n'+1)``-th attempt, while
an attempt that finishes early may under-run the budget (footnote in
Section 4.1).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.model.criticality import CriticalityRole
from repro.model.faults import AdaptationProfile, ReexecutionProfile
from repro.model.mc_task import MCTask, MCTaskSet
from repro.model.task import Task, TaskSet

__all__ = ["convert", "convert_uniform", "convert_uniform_series"]


def convert(
    taskset: TaskSet,
    reexecution: ReexecutionProfile,
    adaptation: AdaptationProfile,
) -> MCTaskSet:
    """Build ``Gamma(N, N'_HI)``: the conventional MC task set of Lemma 4.1.

    Parameters
    ----------
    taskset:
        The fault-tolerant dual-criticality task set ``tau``.
    reexecution:
        ``N``: per-task maximal execution counts ``n_i``.
    adaptation:
        ``N'_HI``: per-HI-task adaptation profiles ``n'_i`` (killing or
        degradation — the conversion is identical; the mechanism matters
        only to the scheduler that consumes the converted set).

    Returns
    -------
    MCTaskSet
        Periods, deadlines and criticalities carry over unchanged; WCETs
        are the cumulative budgets described in the module docstring.
    """
    reexecution.validate_for(taskset)
    adaptation.validate_for(taskset, reexecution)
    mc_tasks: list[MCTask] = []
    for task in taskset:
        n = reexecution[task]
        if task.criticality is CriticalityRole.HI:
            wcet_lo = adaptation[task] * task.wcet
            wcet_hi = n * task.wcet
        else:
            wcet_lo = wcet_hi = n * task.wcet
        mc_tasks.append(
            MCTask(
                name=task.name,
                period=task.period,
                deadline=task.deadline,
                wcet_lo=wcet_lo,
                wcet_hi=wcet_hi,
                criticality=task.criticality,
            )
        )
    return MCTaskSet(mc_tasks, name=f"{taskset.name}/converted")


def convert_uniform(
    taskset: TaskSet, n_hi: int, n_lo: int, n_prime_hi: int
) -> MCTaskSet:
    """``Gamma(n_HI, n_LO, n'_HI)`` under the uniform-profile restriction.

    Section 4.2 of the paper restricts all tasks of a criticality to share
    one re-execution profile and all HI tasks to share one adaptation
    profile; this helper builds the corresponding converted set directly.
    """
    reexecution = ReexecutionProfile.uniform(taskset, n_hi, n_lo)
    adaptation = AdaptationProfile.uniform(taskset, n_prime_hi)
    return convert(taskset, reexecution, adaptation)


def convert_uniform_series(
    taskset: TaskSet, n_hi: int, n_lo: int, n_primes: Sequence[int]
) -> Iterator[tuple[int, MCTaskSet]]:
    """``Gamma(n_HI, n_LO, n')`` for every ``n'`` in ``n_primes``, lazily.

    Equivalent to ``convert_uniform(taskset, n_hi, n_lo, n')`` per entry —
    same task order, names and set name — but the profile validation runs
    once (on the largest requested ``n'``; the bound ``n' <= n`` is
    monotone) and the converted LO tasks, whose budgets do not depend on
    ``n'``, are built once and shared across the series.  This is the hot
    path of :func:`repro.core.profiles.maximal_adaptation_profile`, which
    scans ``n'`` descending and previously re-validated and re-built the
    entire set at every step.
    """
    n_primes = list(n_primes)
    if not n_primes:
        return
    reexecution = ReexecutionProfile.uniform(taskset, n_hi, n_lo)
    AdaptationProfile.uniform(taskset, max(n_primes)).validate_for(
        taskset, reexecution
    )
    if min(n_primes) < 1:
        raise ValueError(
            f"adaptation profile must be at least 1, got {min(n_primes)}"
        )
    name = f"{taskset.name}/converted"
    hi_slots: list[tuple[int, Task]] = []
    template: list[MCTask | None] = []
    for index, task in enumerate(taskset):
        if task.criticality is CriticalityRole.HI:
            hi_slots.append((index, task))
            template.append(None)
        else:
            budget = reexecution[task] * task.wcet
            template.append(
                MCTask(
                    name=task.name,
                    period=task.period,
                    deadline=task.deadline,
                    wcet_lo=budget,
                    wcet_hi=budget,
                    criticality=task.criticality,
                )
            )
    for n_prime in n_primes:
        mc_tasks = list(template)
        for index, task in hi_slots:
            mc_tasks[index] = MCTask(
                name=task.name,
                period=task.period,
                deadline=task.deadline,
                wcet_lo=n_prime * task.wcet,
                wcet_hi=n_hi * task.wcet,
                criticality=task.criticality,
            )
        yield n_prime, MCTaskSet(mc_tasks, name=name)
