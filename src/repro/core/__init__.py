"""The paper's primary contribution: problem conversion and FT-S."""

from repro.core.backends import (
    AMCBackend,
    AMCMaxBackend,
    DbfMCBackend,
    EDFVDBackend,
    EDFVDDegradationBackend,
    SchedulerBackend,
    SMCBackend,
)
from repro.core.conversion import convert, convert_uniform
from repro.core.optimize import (
    PerTaskAdaptationResult,
    PerTaskProfileResult,
    minimal_per_task_reexecution,
    search_per_task_adaptation,
)
from repro.core.ftmc import (
    DEFAULT_OPERATION_HOURS,
    FTSFailure,
    FTSResult,
    ft_edf_vd,
    ft_edf_vd_degradation,
    ft_schedule,
)
from repro.core.profiles import (
    ReexecutionProfiles,
    maximal_adaptation_profile,
    minimal_adaptation_profile,
    minimal_reexecution_profiles,
    pfh_lo_adapted,
)

__all__ = [
    "AMCBackend",
    "AMCMaxBackend",
    "SMCBackend",
    "DbfMCBackend",
    "PerTaskAdaptationResult",
    "PerTaskProfileResult",
    "minimal_per_task_reexecution",
    "search_per_task_adaptation",
    "EDFVDBackend",
    "EDFVDDegradationBackend",
    "SchedulerBackend",
    "convert",
    "convert_uniform",
    "DEFAULT_OPERATION_HOURS",
    "FTSFailure",
    "FTSResult",
    "ft_edf_vd",
    "ft_edf_vd_degradation",
    "ft_schedule",
    "ReexecutionProfiles",
    "maximal_adaptation_profile",
    "minimal_adaptation_profile",
    "minimal_reexecution_profiles",
    "pfh_lo_adapted",
]
