"""Pluggable mixed-criticality scheduler backends for FT-S.

Theorem 4.1 makes FT-S (Algorithm 1) generic over the conventional
mixed-criticality scheduling technique ``S``; the only obligations on a
backend are:

- a schedulability test over converted task sets (Lemma 4.1), and
- monotonicity in the adaptation profile: decreasing ``n'_HI`` (adapting
  *earlier*) preserves schedulability — true for every utilization- or
  response-time-based test shipped here, since ``C(LO)`` budgets shrink.

Backends also declare their adaptation *mechanism* (``"kill"`` vs.
``"degrade"``), which selects the matching LO-safety bound (eq. 5 vs.
eq. 7) inside FT-S, and expose the paper's ``U_MC`` load metric when one
is defined (Algorithm 2 line 11 / eq. 11) for Figs. 1-2.
"""

from __future__ import annotations

import abc
import math

from repro.analysis import kernels
from repro.analysis.amc import amc_rtb_schedulable
from repro.analysis.amc_max import amc_max_schedulable
from repro.analysis.dbf_mc import dbf_mc_schedulable
from repro.analysis.smc import smc_schedulable
from repro.analysis.edf_vd import edf_vd_schedulable, edf_vd_utilization, edf_vd_x
from repro.analysis.edf_vd_degradation import (
    edf_vd_degradation_schedulable,
    edf_vd_degradation_utilization,
)
from repro.model.mc_task import MCTaskSet
from repro.obs import metrics as obs_metrics

__all__ = [
    "SchedulerBackend",
    "EDFVDBackend",
    "EDFVDDegradationBackend",
    "AMCBackend",
    "AMCMaxBackend",
    "DbfMCBackend",
    "SMCBackend",
    "DEFAULT_DEGRADATION_FACTOR",
    "backend_names",
    "make_backend",
    "clear_schedulability_cache",
    "schedulability_cache_info",
]


#: Shared memo for :meth:`SchedulerBackend.is_schedulable_cached`, keyed by
#: ``(backend cache signature, kernel tier, MCTaskSet.cache_key())``.  Kept
#: module-level (rather than per backend instance) because the experiment
#: drivers create fresh backend objects per sweep point while analysing
#: heavily-overlapping converted task sets.  True LRU: hits refresh an
#: entry's recency (dicts preserve insertion order, so pop-and-reinsert is
#: the recency update) and the least-recently-used entry is evicted at
#: :data:`_CACHE_LIMIT` — a resident ``ftmc serve`` process answering
#: millions of distinct task sets holds at most the limit, and the hot
#: working set survives the churn that pure insertion-order eviction would
#: have evicted it under.
_schedulability_cache: dict[tuple, bool] = {}
_CACHE_LIMIT: int = 65536
_cache_hits: int = 0
_cache_misses: int = 0
_cache_evictions: int = 0


def clear_schedulability_cache() -> None:
    """Drop every memoized verdict (and reset the cache counters)."""
    global _cache_hits, _cache_misses, _cache_evictions
    _schedulability_cache.clear()
    _cache_hits = 0
    _cache_misses = 0
    _cache_evictions = 0


def schedulability_cache_info() -> dict[str, int]:
    """Counters for diagnostics, ``ftmc bench`` and the serve endpoints."""
    return {
        "entries": len(_schedulability_cache),
        "limit": _CACHE_LIMIT,
        "hits": _cache_hits,
        "misses": _cache_misses,
        "evictions": _cache_evictions,
    }


class SchedulerBackend(abc.ABC):
    """A conventional MC scheduling technique pluggable into FT-S."""

    #: Human-readable backend identifier.
    name: str = "abstract"
    #: ``"kill"`` or ``"degrade"`` — the fate of LO tasks after the switch.
    mechanism: str = "kill"

    @abc.abstractmethod
    def is_schedulable(self, mc: MCTaskSet) -> bool:
        """Sufficient schedulability test for the converted task set."""

    @property
    def cache_signature(self) -> tuple:
        """Hashable identity of the *configured* test this backend runs.

        Two backend instances with equal signatures must return identical
        verdicts on every task set.  The default covers stateless backends
        (the class fully determines the test); backends with parameters
        must extend it (see :class:`EDFVDDegradationBackend`).
        """
        return (type(self).__qualname__,)

    def is_schedulable_cached(self, mc: MCTaskSet) -> bool:
        """:meth:`is_schedulable` through the shared verdict memo.

        The FT-S searches (and the experiment sweeps built on them) probe
        the same converted task sets many times — e.g. line 8's descending
        ``n'`` scan revisits the sets of neighbouring sweep points — so
        verdicts are memoized by ``(cache_signature, kernel tier,
        mc.cache_key())``.  Safe because backends are referentially
        transparent in the task parameters; task *names* are deliberately
        not part of the key.  The kernel tier
        (:func:`repro.analysis.kernels.kernel_tier`) *is* part of the key:
        ``REPRO_NO_NUMPY`` is read at call time, so within one resident
        process a verdict computed under one tier must never be replayed
        as the other tier's answer — conflating them would defeat the
        toggle as an equivalence diagnostic.
        """
        global _cache_hits, _cache_misses, _cache_evictions
        key = (self.cache_signature, kernels.kernel_tier(), mc.cache_key())
        try:
            # Pop-and-reinsert marks the entry most-recently-used.
            verdict = _schedulability_cache.pop(key)
            _schedulability_cache[key] = verdict
            _cache_hits += 1
            obs_metrics.inc("core.sched_cache.hits")
            return verdict
        except KeyError:
            _cache_misses += 1
            obs_metrics.inc("core.sched_cache.misses")
        verdict = self.is_schedulable(mc)
        while len(_schedulability_cache) >= _CACHE_LIMIT:
            _schedulability_cache.pop(next(iter(_schedulability_cache)))
            _cache_evictions += 1
            obs_metrics.inc("core.sched_cache.evictions")
        _schedulability_cache[key] = verdict
        return verdict

    def utilization_metric(self, mc: MCTaskSet) -> float:
        """``U_MC`` when the backend defines one; ``nan`` otherwise.

        The paper cautions (Section 5.1) that ``U_MC`` values are not
        comparable across backends with different analyses.
        """
        return math.nan

    @property
    def degradation_factor(self) -> float | None:
        """``df`` for degrade backends, ``None`` for kill backends."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class EDFVDBackend(SchedulerBackend):
    """EDF-VD with task killing [Baruah et al. 2012] — Appendix B.0.1.

    The backend used by Algorithm 2 of the paper; schedulability is the
    utilization test of eq. (10).
    """

    name = "edf-vd"
    mechanism = "kill"

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return edf_vd_schedulable(mc)

    def utilization_metric(self, mc: MCTaskSet) -> float:
        return edf_vd_utilization(mc)

    def virtual_deadline_factor(self, mc: MCTaskSet) -> float | None:
        """Runtime parameter ``x`` for the simulator (``None`` if unschedulable)."""
        return edf_vd_x(mc)


class EDFVDDegradationBackend(SchedulerBackend):
    """EDF-VD with service degradation [Huang et al. 2014] — Appendix B.0.2.

    Schedulability is the test of eq. (12); the LO tasks survive the mode
    switch with periods stretched by ``df``.
    """

    name = "edf-vd-degradation"
    mechanism = "degrade"

    def __init__(self, degradation_factor: float) -> None:
        if degradation_factor <= 1.0:
            raise ValueError(
                f"degradation factor must be > 1, got {degradation_factor}"
            )
        self._df = degradation_factor
        self.name = f"edf-vd-degradation(df={degradation_factor:g})"

    @property
    def cache_signature(self) -> tuple:
        return (type(self).__qualname__, self._df)

    @property
    def degradation_factor(self) -> float:
        return self._df

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return edf_vd_degradation_schedulable(mc, self._df)

    def utilization_metric(self, mc: MCTaskSet) -> float:
        return edf_vd_degradation_utilization(mc, self._df)


class AMCBackend(SchedulerBackend):
    """Fixed-priority AMC-rtb with Audsley assignment (library extension).

    Demonstrates the generality claim of Theorem 4.1 with a
    response-time-based backend; requires constrained deadlines.
    """

    name = "amc-rtb"
    mechanism = "kill"

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return amc_rtb_schedulable(mc)


class DbfMCBackend(SchedulerBackend):
    """Demand-bound-function dual-criticality EDF (library extension).

    A simplified Ekberg-Yi-style test (see
    :mod:`repro.analysis.dbf_mc`); third demonstration of Theorem 4.1's
    backend generality and the subject of the backend-ablation benchmark.
    """

    name = "dbf-mc"
    mechanism = "kill"

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return dbf_mc_schedulable(mc)


class SMCBackend(SchedulerBackend):
    """Vestal's Static Mixed Criticality fixed-priority test (extension).

    The weakest fixed-priority MC test (AMC dominates it); included to
    complete the backend-ablation spectrum.
    """

    name = "smc"
    mechanism = "kill"

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return smc_schedulable(mc)


class AMCMaxBackend(SchedulerBackend):
    """AMC-max: the precise adaptive fixed-priority test (extension).

    Dominates :class:`AMCBackend` (AMC-rtb) at a higher analysis cost —
    it maximises the HI-mode response time over candidate mode-switch
    instants.
    """

    name = "amc-max"
    mechanism = "kill"

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return amc_max_schedulable(mc)


# -- registry ------------------------------------------------------------------

#: Default ``df`` when a degrade backend is requested without one; matches
#: the ``ftmc analyze`` default.
DEFAULT_DEGRADATION_FACTOR: float = 6.0

_BACKEND_FACTORIES = {
    "edf-vd": lambda df: EDFVDBackend(),
    "edf-vd-degradation": lambda df: EDFVDDegradationBackend(
        DEFAULT_DEGRADATION_FACTOR if df is None else df
    ),
    "amc-rtb": lambda df: AMCBackend(),
    "amc-max": lambda df: AMCMaxBackend(),
    "smc": lambda df: SMCBackend(),
    "dbf-mc": lambda df: DbfMCBackend(),
}


def backend_names() -> list[str]:
    """The selectable backend registry names, sorted."""
    return sorted(_BACKEND_FACTORIES)


def make_backend(
    name: str, degradation_factor: float | None = None
) -> SchedulerBackend:
    """Instantiate a backend by its registry name.

    ``degradation_factor`` applies to degrade backends (default
    :data:`DEFAULT_DEGRADATION_FACTOR`) and is rejected for kill backends
    rather than silently ignored.  Raises :class:`ValueError` on unknown
    names or invalid parameters; the API facade maps those to structured
    400s (:func:`repro.api.service.make_backend`).
    """
    factory = _BACKEND_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; one of: {', '.join(backend_names())}"
        )
    if degradation_factor is not None and name != "edf-vd-degradation":
        raise ValueError(
            f"backend {name!r} does not take a degradation factor"
        )
    return factory(degradation_factor)
