"""Pluggable mixed-criticality scheduler backends for FT-S.

Theorem 4.1 makes FT-S (Algorithm 1) generic over the conventional
mixed-criticality scheduling technique ``S``; the only obligations on a
backend are:

- a schedulability test over converted task sets (Lemma 4.1), and
- monotonicity in the adaptation profile: decreasing ``n'_HI`` (adapting
  *earlier*) preserves schedulability — true for every utilization- or
  response-time-based test shipped here, since ``C(LO)`` budgets shrink.

Backends also declare their adaptation *mechanism* (``"kill"`` vs.
``"degrade"``), which selects the matching LO-safety bound (eq. 5 vs.
eq. 7) inside FT-S, and expose the paper's ``U_MC`` load metric when one
is defined (Algorithm 2 line 11 / eq. 11) for Figs. 1-2.
"""

from __future__ import annotations

import abc
import math

from typing import Callable, Sequence

from repro.analysis import kernels
from repro.analysis.amc import amc_rtb_schedulable
from repro.analysis.amc_max import amc_max_schedulable
from repro.analysis.dbf_mc import dbf_mc_schedulable
from repro.analysis.smc import smc_schedulable
from repro.analysis.edf_vd import edf_vd_schedulable, edf_vd_utilization, edf_vd_x
from repro.analysis.edf_vd_degradation import (
    edf_vd_degradation_schedulable,
    edf_vd_degradation_utilization,
)
from repro.analysis.edf import (
    edf_processor_demand_test_batch,
    edf_schedulable,
    inflated_workload,
)
from repro.analysis.tolerance import utilization_exceeds
from repro.core import shared_cache
from repro.model.criticality import CriticalityRole
from repro.model.faults import AdaptationProfile, ReexecutionProfile
from repro.model.mc_task import MCTaskSet
from repro.model.task import TaskSet
from repro.obs import metrics as obs_metrics

__all__ = [
    "SchedulerBackend",
    "EDFVDBackend",
    "EDFVDDegradationBackend",
    "AMCBackend",
    "AMCMaxBackend",
    "DbfMCBackend",
    "SMCBackend",
    "DEFAULT_DEGRADATION_FACTOR",
    "backend_names",
    "make_backend",
    "clear_schedulability_cache",
    "schedulability_cache_info",
    "baseline_schedulable_series",
]


#: Shared memo for :meth:`SchedulerBackend.is_schedulable_cached`, keyed by
#: ``(backend cache signature, kernel tier, MCTaskSet.cache_key())``.  Kept
#: module-level (rather than per backend instance) because the experiment
#: drivers create fresh backend objects per sweep point while analysing
#: heavily-overlapping converted task sets.  True LRU: hits refresh an
#: entry's recency (dicts preserve insertion order, so pop-and-reinsert is
#: the recency update) and the least-recently-used entry is evicted at
#: :data:`_CACHE_LIMIT` — a resident ``ftmc serve`` process answering
#: millions of distinct task sets holds at most the limit, and the hot
#: working set survives the churn that pure insertion-order eviction would
#: have evicted it under.
_schedulability_cache: dict[tuple, bool] = {}
_CACHE_LIMIT: int = 65536
_cache_hits: int = 0
_cache_misses: int = 0
_cache_evictions: int = 0
_shared_hits: int = 0


def clear_schedulability_cache() -> None:
    """Drop every memoized verdict (and reset the cache counters)."""
    global _cache_hits, _cache_misses, _cache_evictions, _shared_hits
    _schedulability_cache.clear()
    _cache_hits = 0
    _cache_misses = 0
    _cache_evictions = 0
    _shared_hits = 0


def schedulability_cache_info() -> dict[str, int]:
    """Counters for diagnostics, ``ftmc bench`` and the serve endpoints.

    ``shared_hits`` counts verdicts this process adopted from the
    campaign-wide :mod:`repro.core.shared_cache` segment instead of
    recomputing (always 0 when no campaign cache is announced).
    """
    return {
        "entries": len(_schedulability_cache),
        "limit": _CACHE_LIMIT,
        "hits": _cache_hits,
        "misses": _cache_misses,
        "evictions": _cache_evictions,
        "shared_hits": _shared_hits,
    }


def _cached_verdict(key: tuple, compute: Callable[[], bool]) -> bool:
    """Route one verdict through the local LRU and the shared campaign cache.

    Probe order: local memo (pop-and-reinsert refreshes recency), then the
    cross-process segment of :mod:`repro.core.shared_cache` (present only
    inside parallel campaigns), then ``compute()``.  Freshly computed
    verdicts are published to both layers; shared hits are inserted into
    the local memo so each process pays the (cheap, but syscall-free is
    better) shared probe at most once per key.  Adopting a sibling
    worker's verdict is sound for the same reason the local memo is: a
    verdict is a deterministic function of the key, which embeds the
    backend signature, the kernel tier and the full analysed parameters.
    """
    verdict = _probe_cached(key)
    if verdict is not None:
        return verdict
    verdict = compute()
    _store_verdict(key, verdict, publish=True)
    return verdict


def _probe_cached(key: tuple) -> bool | None:
    """Probe both cache layers; a shared hit is adopted into the local memo."""
    global _cache_hits, _cache_misses, _shared_hits
    try:
        # Pop-and-reinsert marks the entry most-recently-used.
        verdict = _schedulability_cache.pop(key)
        _schedulability_cache[key] = verdict
        _cache_hits += 1
        obs_metrics.inc("core.sched_cache.hits")
        return verdict
    except KeyError:
        _cache_misses += 1
        obs_metrics.inc("core.sched_cache.misses")
    shared = shared_cache.probe(repr(key).encode())
    if shared is None:
        return None
    _shared_hits += 1
    obs_metrics.inc("core.sched_cache.shared_hits")
    _store_verdict(key, shared, publish=False)
    return shared


def _store_verdict(key: tuple, verdict: bool, publish: bool) -> None:
    """Insert into the local LRU; optionally announce to the campaign cache."""
    global _cache_evictions
    if publish:
        shared_cache.publish(repr(key).encode(), verdict)
    while len(_schedulability_cache) >= _CACHE_LIMIT:
        _schedulability_cache.pop(next(iter(_schedulability_cache)))
        _cache_evictions += 1
        obs_metrics.inc("core.sched_cache.evictions")
    _schedulability_cache[key] = verdict


def baseline_schedulable_series(
    tasksets: Sequence[TaskSet],
    reexecutions: Sequence[ReexecutionProfile],
) -> list[bool]:
    """The no-adaptation baseline over a whole sweep, through the caches.

    Cached sweep form of
    :func:`repro.analysis.edf.schedulable_without_adaptation`: each set's
    verdict is keyed by its *inflated workload* (the ``n_i``-budgeted
    WCETs plus deadline and period per task), the kernel tier and a
    baseline marker — nothing panel- or mechanism-specific.  That makes
    the entries shareable wherever different sweeps analyse identical
    generated sets with equal re-execution profiles, which is exactly the
    fig3 overlap (panels at equal failure probability and grid point
    re-generate the same sets, and the profile pairs coincide across
    same-LO-level panels).  Misses that need the processor-demand
    criterion are deferred into one
    :func:`~repro.analysis.edf.edf_processor_demand_test_batch` call;
    empty and implicit-deadline workloads keep the scalar dispatch of
    :func:`~repro.analysis.edf.edf_schedulable` verbatim.
    """
    tier = kernels.kernel_tier()
    verdicts: list[bool | None] = []
    pending: list[tuple[int, tuple, list]] = []
    for taskset, reexecution in zip(tasksets, reexecutions):
        workload = inflated_workload(taskset, reexecution)
        key = (
            "edf.baseline",
            tier,
            tuple((w.wcet, w.deadline, w.period) for w in workload),
        )
        cached = _probe_cached(key)
        if cached is not None:
            verdicts.append(cached)
            continue
        needs_pdc = workload and not all(
            math.isclose(w.deadline, w.period) for w in workload
        )
        if needs_pdc and kernels.batch_enabled():
            pending.append((len(verdicts), key, workload))
            verdicts.append(None)
            continue
        verdict = edf_schedulable(workload)
        _store_verdict(key, verdict, publish=True)
        verdicts.append(verdict)
    if pending:
        batch = edf_processor_demand_test_batch(
            [workload for _, _, workload in pending]
        )
        for (index, key, _), verdict in zip(pending, batch):
            _store_verdict(key, verdict, publish=True)
            verdicts[index] = verdict
    return [bool(v) for v in verdicts]


class SchedulerBackend(abc.ABC):
    """A conventional MC scheduling technique pluggable into FT-S."""

    #: Human-readable backend identifier.
    name: str = "abstract"
    #: ``"kill"`` or ``"degrade"`` — the fate of LO tasks after the switch.
    mechanism: str = "kill"

    @abc.abstractmethod
    def is_schedulable(self, mc: MCTaskSet) -> bool:
        """Sufficient schedulability test for the converted task set."""

    @property
    def cache_signature(self) -> tuple:
        """Hashable identity of the *configured* test this backend runs.

        Two backend instances with equal signatures must return identical
        verdicts on every task set.  The default covers stateless backends
        (the class fully determines the test); backends with parameters
        must extend it (see :class:`EDFVDDegradationBackend`).
        """
        return (type(self).__qualname__,)

    def is_schedulable_cached(self, mc: MCTaskSet) -> bool:
        """:meth:`is_schedulable` through the shared verdict memo.

        The FT-S searches (and the experiment sweeps built on them) probe
        the same converted task sets many times — e.g. line 8's descending
        ``n'`` scan revisits the sets of neighbouring sweep points — so
        verdicts are memoized by ``(cache_signature, kernel tier,
        mc.cache_key())``.  Safe because backends are referentially
        transparent in the task parameters; task *names* are deliberately
        not part of the key.  The kernel tier
        (:func:`repro.analysis.kernels.kernel_tier`) *is* part of the key:
        ``REPRO_NO_NUMPY`` is read at call time, so within one resident
        process a verdict computed under one tier must never be replayed
        as the other tier's answer — conflating them would defeat the
        toggle as an equivalence diagnostic.  Inside a parallel campaign
        the same key is additionally probed against (and published to) the
        cross-process segment of :mod:`repro.core.shared_cache`, so
        sibling workers that converge on the same converted set share one
        computation.
        """
        key = (self.cache_signature, kernels.kernel_tier(), mc.cache_key())
        return _cached_verdict(key, lambda: self.is_schedulable(mc))

    def schedulable_uniform_series(
        self,
        taskset: TaskSet,
        n_hi: int,
        n_lo: int,
        n_primes: Sequence[int],
    ) -> list[bool] | None:
        """Verdict ``Gamma(n_hi, n_lo, n')`` for every ``n'``, analytically.

        Sweep-batch hook for line 8 of Algorithm 1: backends whose test is
        a closed-form function of the criticality utilizations can verdict
        a whole candidate series without materialising the converted
        :class:`~repro.model.mc_task.MCTaskSet` objects.  Implementations
        must return verdicts aligned with ``n_primes`` that are
        *bit-identical* to ``is_schedulable_cached(convert_uniform(...))``
        per candidate — including raising the same validation errors — and
        must route every candidate through :func:`_cached_verdict` under
        the exact key the converted set would have produced, so the local
        and shared caches stay coherent across the fast and generic paths.

        The base implementation returns ``None`` ("no fast path"), which
        makes :func:`repro.core.profiles.maximal_adaptation_profile` fall
        back to the conversion-based scan.
        """
        return None

    def utilization_metric(self, mc: MCTaskSet) -> float:
        """``U_MC`` when the backend defines one; ``nan`` otherwise.

        The paper cautions (Section 5.1) that ``U_MC`` values are not
        comparable across backends with different analyses.
        """
        return math.nan

    @property
    def degradation_factor(self) -> float | None:
        """``df`` for degrade backends, ``None`` for kill backends."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


def _edf_vd_uniform_series(
    backend: SchedulerBackend,
    taskset: TaskSet,
    n_hi: int,
    n_lo: int,
    n_primes: Sequence[int],
    degradation_factor: float | None,
) -> list[bool]:
    """Analytic uniform-series verdicts for the EDF-VD family.

    Mirrors, expression by expression, the composition of
    :func:`repro.core.conversion.convert_uniform_series` with
    :func:`repro.analysis.edf_vd.analyse` (``degradation_factor is None``)
    or :func:`repro.analysis.edf_vd_degradation.analyse`: the converted
    budgets are ``n' * C`` / ``n_hi * C`` for HI tasks and ``n_lo * C``
    for LO tasks, so the criticality utilizations are plain Python sums of
    ``(n * wcet) / period`` in task order — evaluated here with the same
    float operations in the same order as the materialised path, making
    the verdicts (and the cache keys they are stored under) bit-identical.
    ``U_LO^LO`` and ``U_HI^HI`` are candidate-independent and hoisted out
    of the scan; only ``U_HI^LO`` is recomputed per ``n'``.
    """
    n_primes = list(n_primes)
    if not n_primes:
        return []
    # Same validation, in the same order, as convert_uniform_series.
    reexecution = ReexecutionProfile.uniform(taskset, n_hi, n_lo)
    AdaptationProfile.uniform(taskset, max(n_primes)).validate_for(
        taskset, reexecution
    )
    if min(n_primes) < 1:
        raise ValueError(
            f"adaptation profile must be at least 1, got {min(n_primes)}"
        )
    # analyse() would reject the first converted candidate; fail up front.
    if not all(math.isclose(t.deadline, t.period) for t in taskset):
        raise ValueError("EDF-VD analysis requires implicit deadlines")
    hi_tasks = taskset.hi_tasks
    lo_tasks = taskset.lo_tasks
    u_lo_lo = sum((n_lo * t.wcet) / t.period for t in lo_tasks)
    u_hi_hi = sum((n_hi * t.wcet) / t.period for t in hi_tasks)
    tier = kernels.kernel_tier()
    signature = backend.cache_signature

    def verdict_at(n_prime: int) -> bool:
        u_hi_lo = sum((n_prime * t.wcet) / t.period for t in hi_tasks)
        lo_mode = u_hi_lo + u_lo_lo
        if u_lo_lo >= 1.0:
            hi_mode = math.inf
        elif degradation_factor is None:
            x = u_hi_lo / (1.0 - u_lo_lo)
            hi_mode = u_hi_hi + x * u_lo_lo
        else:
            lam = u_hi_lo / (1.0 - u_lo_lo)
            if lam >= 1.0:
                hi_mode = math.inf
            else:
                hi_mode = u_hi_hi / (1.0 - lam) + u_lo_lo / (
                    degradation_factor - 1.0
                )
        return not utilization_exceeds(max(lo_mode, hi_mode))

    verdicts = []
    for n_prime in n_primes:
        # The key the converted set would have produced: MCTaskSet.cache_key()
        # is (T, D, C(LO), C(HI), chi) per task in original order, with the
        # budgets exactly as convert() computes them.
        mc_key = tuple(
            (t.period, t.deadline, n_prime * t.wcet, n_hi * t.wcet,
             CriticalityRole.HI)
            if t.criticality is CriticalityRole.HI
            else (t.period, t.deadline, n_lo * t.wcet, n_lo * t.wcet,
                  CriticalityRole.LO)
            for t in taskset
        )
        key = (signature, tier, mc_key)
        verdicts.append(
            _cached_verdict(key, lambda n=n_prime: verdict_at(n))
        )
    return verdicts


class EDFVDBackend(SchedulerBackend):
    """EDF-VD with task killing [Baruah et al. 2012] — Appendix B.0.1.

    The backend used by Algorithm 2 of the paper; schedulability is the
    utilization test of eq. (10).
    """

    name = "edf-vd"
    mechanism = "kill"

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return edf_vd_schedulable(mc)

    def schedulable_uniform_series(
        self,
        taskset: TaskSet,
        n_hi: int,
        n_lo: int,
        n_primes: Sequence[int],
    ) -> list[bool] | None:
        return _edf_vd_uniform_series(
            self, taskset, n_hi, n_lo, n_primes, None
        )

    def utilization_metric(self, mc: MCTaskSet) -> float:
        return edf_vd_utilization(mc)

    def virtual_deadline_factor(self, mc: MCTaskSet) -> float | None:
        """Runtime parameter ``x`` for the simulator (``None`` if unschedulable)."""
        return edf_vd_x(mc)


class EDFVDDegradationBackend(SchedulerBackend):
    """EDF-VD with service degradation [Huang et al. 2014] — Appendix B.0.2.

    Schedulability is the test of eq. (12); the LO tasks survive the mode
    switch with periods stretched by ``df``.
    """

    name = "edf-vd-degradation"
    mechanism = "degrade"

    def __init__(self, degradation_factor: float) -> None:
        if degradation_factor <= 1.0:
            raise ValueError(
                f"degradation factor must be > 1, got {degradation_factor}"
            )
        self._df = degradation_factor
        self.name = f"edf-vd-degradation(df={degradation_factor:g})"

    @property
    def cache_signature(self) -> tuple:
        return (type(self).__qualname__, self._df)

    @property
    def degradation_factor(self) -> float:
        return self._df

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return edf_vd_degradation_schedulable(mc, self._df)

    def utilization_metric(self, mc: MCTaskSet) -> float:
        return edf_vd_degradation_utilization(mc, self._df)

    def schedulable_uniform_series(
        self,
        taskset: TaskSet,
        n_hi: int,
        n_lo: int,
        n_primes: Sequence[int],
    ) -> list[bool] | None:
        return _edf_vd_uniform_series(
            self, taskset, n_hi, n_lo, n_primes, self._df
        )


class AMCBackend(SchedulerBackend):
    """Fixed-priority AMC-rtb with Audsley assignment (library extension).

    Demonstrates the generality claim of Theorem 4.1 with a
    response-time-based backend; requires constrained deadlines.
    """

    name = "amc-rtb"
    mechanism = "kill"

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return amc_rtb_schedulable(mc)


class DbfMCBackend(SchedulerBackend):
    """Demand-bound-function dual-criticality EDF (library extension).

    A simplified Ekberg-Yi-style test (see
    :mod:`repro.analysis.dbf_mc`); third demonstration of Theorem 4.1's
    backend generality and the subject of the backend-ablation benchmark.
    """

    name = "dbf-mc"
    mechanism = "kill"

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return dbf_mc_schedulable(mc)


class SMCBackend(SchedulerBackend):
    """Vestal's Static Mixed Criticality fixed-priority test (extension).

    The weakest fixed-priority MC test (AMC dominates it); included to
    complete the backend-ablation spectrum.
    """

    name = "smc"
    mechanism = "kill"

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return smc_schedulable(mc)


class AMCMaxBackend(SchedulerBackend):
    """AMC-max: the precise adaptive fixed-priority test (extension).

    Dominates :class:`AMCBackend` (AMC-rtb) at a higher analysis cost —
    it maximises the HI-mode response time over candidate mode-switch
    instants.
    """

    name = "amc-max"
    mechanism = "kill"

    def is_schedulable(self, mc: MCTaskSet) -> bool:
        return amc_max_schedulable(mc)


# -- registry ------------------------------------------------------------------

#: Default ``df`` when a degrade backend is requested without one; matches
#: the ``ftmc analyze`` default.
DEFAULT_DEGRADATION_FACTOR: float = 6.0

_BACKEND_FACTORIES = {
    "edf-vd": lambda df: EDFVDBackend(),
    "edf-vd-degradation": lambda df: EDFVDDegradationBackend(
        DEFAULT_DEGRADATION_FACTOR if df is None else df
    ),
    "amc-rtb": lambda df: AMCBackend(),
    "amc-max": lambda df: AMCMaxBackend(),
    "smc": lambda df: SMCBackend(),
    "dbf-mc": lambda df: DbfMCBackend(),
}


def backend_names() -> list[str]:
    """The selectable backend registry names, sorted."""
    return sorted(_BACKEND_FACTORIES)


def make_backend(
    name: str, degradation_factor: float | None = None
) -> SchedulerBackend:
    """Instantiate a backend by its registry name.

    ``degradation_factor`` applies to degrade backends (default
    :data:`DEFAULT_DEGRADATION_FACTOR`) and is rejected for kill backends
    rather than silently ignored.  Raises :class:`ValueError` on unknown
    names or invalid parameters; the API facade maps those to structured
    400s (:func:`repro.api.service.make_backend`).
    """
    factory = _BACKEND_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; one of: {', '.join(backend_names())}"
        )
    if degradation_factor is not None and name != "edf-vd-degradation":
        raise ValueError(
            f"backend {name!r} does not take a degradation factor"
        )
    return factory(degradation_factor)
