"""Per-task re-execution profile optimization (ablation of Section 4.2).

The paper simplifies its search space by forcing one re-execution profile
per criticality level (``forall tau_i, tau_j in tau_chi: n_i = n_j``).
This module relaxes that restriction: since the plain PFH bound of eq. (2)
is a *sum of independent per-task terms* ``r_i(n_i, t) * f_i^{n_i}``, a
per-task profile can reach the same ceiling with strictly less processor
load whenever tasks differ in period or failure probability.

:func:`minimal_per_task_reexecution` greedily raises, at each step, the
profile of the task whose load increase buys the largest PFH reduction —
a Lagrangian-style utility rule.  The result always satisfies the ceiling
(when reachable) and the ablation benchmark compares its inflated
utilization against the uniform profile's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.criticality import CriticalityRole
from repro.model.faults import AdaptationProfile, ReexecutionProfile
from repro.model.task import HOUR_MS, Task, TaskSet
from repro.safety.pfh import DEFAULT_MAX_REEXECUTIONS, max_rounds

__all__ = [
    "PerTaskProfileResult",
    "minimal_per_task_reexecution",
    "PerTaskAdaptationResult",
    "search_per_task_adaptation",
]


@dataclass(frozen=True)
class PerTaskProfileResult:
    """Outcome of the greedy per-task profile search."""

    profile: ReexecutionProfile
    pfh: float
    #: ``sum n_i * C_i / T_i`` over the optimised tasks.
    inflated_utilization: float


def _term(task: Task, n: int, assume_full_wcet: bool) -> float:
    """One task's eq.-(2) contribution at profile ``n``."""
    rounds = max_rounds(task, n, HOUR_MS, assume_full_wcet)
    return rounds * task.failure_probability**n


def minimal_per_task_reexecution(
    taskset: TaskSet,
    role: CriticalityRole,
    pfh_ceiling: float,
    max_n: int = DEFAULT_MAX_REEXECUTIONS,
    assume_full_wcet: bool = True,
    validate: bool = False,
) -> PerTaskProfileResult | None:
    """Per-task profiles meeting ``pfh(role) <= ceiling`` at low load.

    Greedy: start from ``n_i = 1`` everywhere; while the summed bound
    exceeds the ceiling, increment the profile of the task with the best
    PFH-reduction-per-utilization ratio.  Returns ``None`` when even
    ``n_i = max_n`` everywhere cannot reach the ceiling.

    With ``validate=True`` the model lint rules run first and raise
    :class:`repro.lint.LintError` on error-severity findings.

    The loop terminates: each step strictly decreases some task's term and
    profiles are bounded by ``max_n``.
    """
    if validate:
        from repro.lint.engine import validate_taskset

        validate_taskset(taskset)
    tasks = list(taskset.by_criticality(role))
    if not tasks:
        return PerTaskProfileResult(ReexecutionProfile({}), 0.0, 0.0)

    profile = {t.name: 1 for t in tasks}
    terms = {
        t.name: _term(t, 1, assume_full_wcet) for t in tasks
    }

    def total() -> float:
        return sum(terms.values())

    while total() > pfh_ceiling:
        best_name: str | None = None
        best_utility = -1.0
        for task in tasks:
            n = profile[task.name]
            if n >= max_n:
                continue
            gain = terms[task.name] - _term(task, n + 1, assume_full_wcet)
            cost = task.utilization  # extra load of one more execution
            utility = gain / cost if cost > 0 else gain
            if utility > best_utility:
                best_utility = utility
                best_name = task.name
        if best_name is None or best_utility <= 0.0:
            return None  # every task saturated and still above the ceiling
        profile[best_name] += 1
        task = taskset.task(best_name)
        terms[best_name] = _term(task, profile[best_name], assume_full_wcet)

    result_profile = ReexecutionProfile(profile)
    inflated = sum(profile[t.name] * t.utilization for t in tasks)
    return PerTaskProfileResult(
        profile=result_profile, pfh=total(), inflated_utilization=inflated
    )


@dataclass(frozen=True)
class PerTaskAdaptationResult:
    """Outcome of the per-task adaptation-profile search."""

    success: bool
    adaptation: AdaptationProfile | None
    pfh_lo: float
    reason: str


def search_per_task_adaptation(
    taskset: TaskSet,
    n_hi: int,
    n_lo: int,
    backend,
    operation_hours: float,
    assume_full_wcet: bool = True,
    validate: bool = False,
) -> PerTaskAdaptationResult:
    """Per-task killing/degradation profiles (relaxing Section 4.2 again).

    The paper shares one ``n'`` across all HI tasks; a per-task profile
    can instead sacrifice only the *cheapest* task's late re-executions.
    Greedy search: start from ``n'_i = n_i`` (never adapt), and while the
    converted set fails the backend test, decrement the ``n'_i`` whose
    reduction removes the most LO-mode budget (largest ``C_i / T_i``)
    among tasks still above 1.  The backend's monotonicity makes each
    decrement a (weak) improvement; on reaching schedulability, the
    LO-level safety bound is evaluated at the resulting profile.

    Degradation backends use eq. (7), killing backends eq. (5); with an
    LO level that carries no ceiling the safety check is vacuous.
    """
    from repro.core.conversion import convert
    from repro.safety.degradation import pfh_lo_degradation
    from repro.safety.killing import pfh_lo_killing

    if validate:
        from repro.lint.engine import validate_taskset

        validate_taskset(taskset)
    if taskset.spec is None:
        raise ValueError("task set has no dual-criticality spec attached")
    reexecution = ReexecutionProfile.uniform(taskset, n_hi, n_lo)
    profile = {t.name: n_hi for t in taskset.hi_tasks}

    def schedulable() -> bool:
        return backend.is_schedulable(
            convert(taskset, reexecution, AdaptationProfile(profile))
        )

    while not schedulable():
        candidates = [
            t for t in taskset.hi_tasks if profile[t.name] > 1
        ]
        if not candidates:
            return PerTaskAdaptationResult(
                success=False,
                adaptation=None,
                pfh_lo=float("nan"),
                reason="unschedulable even with every profile at 1",
            )
        victim = max(candidates, key=lambda t: t.utilization)
        profile[victim.name] -= 1

    adaptation = AdaptationProfile(profile)
    if backend.mechanism == "degrade":
        pfh_lo = pfh_lo_degradation(
            taskset, reexecution, adaptation, operation_hours,
            assume_full_wcet,
        )
    else:
        pfh_lo = pfh_lo_killing(
            taskset, reexecution, adaptation, operation_hours,
            assume_full_wcet,
        )
    ceiling = taskset.spec.pfh_requirement(CriticalityRole.LO)
    if pfh_lo >= ceiling:
        return PerTaskAdaptationResult(
            success=False,
            adaptation=adaptation,
            pfh_lo=pfh_lo,
            reason=(
                f"schedulable profile violates the LO ceiling "
                f"({pfh_lo:.3e} >= {ceiling:g})"
            ),
        )
    return PerTaskAdaptationResult(
        success=True,
        adaptation=adaptation,
        pfh_lo=pfh_lo,
        reason="per-task adaptation profile found",
    )
