"""Cross-process schedulability verdict cache over ``multiprocessing.shared_memory``.

The per-process verdict memo in :mod:`repro.core.backends` stops helping
the moment a campaign fans out over ``--jobs N`` workers: every process
recomputes the verdicts of the task sets its shards happen to share with
its siblings (the fig3 sweep literally re-generates identical sets across
panels at equal failure probability and point index, because the panel is
deliberately not part of the generator seed).  This module gives all
workers of one campaign a fixed-size, fingerprint-keyed verdict table in
shared memory.

Design constraints and how they are met:

- **Lock-free.**  No locks, no atomics — a slot is 16 opaque bytes.  The
  stored value is ``blake2b(key_bytes + verdict_byte)``, so a *reader*
  recomputes both candidate digests (verdict ``True``/``False``) and
  infers the verdict from which one matches the slot.  A torn or
  concurrent write matches neither digest (collision probability
  ``2^-128``) and reads as a miss — never as a wrong verdict.  Writes are
  last-writer-wins; verdicts are deterministic functions of the key, so
  two writers racing on one slot write interchangeable bytes unless they
  disagree on the key, in which case the loser's entry is simply evicted.
- **Fixed-slot, no eviction scan.**  The slot index is the key digest
  modulo the slot count; colliding keys overwrite each other (a lossy
  cache is fine — the backend memo in front of it absorbs re-misses).
- **Fork-reset aware.**  The per-process attachment is lazy (resolved
  from :data:`ENV_VAR` on first probe) and registered with
  :func:`repro.obs.trace.register_fork_reset`, so forked workers drop the
  inherited mapping and re-attach by name; the shared *data* is never
  cleared by a fork.
- **Fail-open.**  Any failure to create, attach or touch the segment
  disables the cache for the calling process; analyses never fail because
  the cache did.

The hit/store counters live in the segment header and are updated with
racy read-modify-write cycles: lossy under contention, but monotone and
never reset to zero by a race — sufficient for the parallel-smoke
assertion that a multi-worker campaign actually shared verdicts.
"""

from __future__ import annotations

import os
import struct
from hashlib import blake2b

from repro.obs.trace import register_fork_reset

try:  # pragma: no cover - absent on some minimal platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "ENV_VAR",
    "DEFAULT_SLOTS",
    "SharedVerdictCache",
    "active_cache",
    "probe",
    "publish",
    "stats",
]

#: Environment variable carrying the shared-memory segment name; set by the
#: campaign supervisor before executors start so both forked and spawned
#: workers inherit it.
ENV_VAR: str = "REPRO_SHARED_CACHE"

#: Default slot count: 64 Ki slots x 16 bytes = 1 MiB per campaign.
DEFAULT_SLOTS: int = 1 << 16

_DIGEST_SIZE: int = 16
_MAGIC: bytes = b"FTMCSHC1"
_HEADER = struct.Struct("<8sQQQ")  # magic, nslots, hits, stores
_HITS_OFFSET: int = 16
_STORES_OFFSET: int = 24


class SharedVerdictCache:
    """One campaign's shared verdict table (see the module docstring)."""

    def __init__(self, shm, nslots: int, owner: bool) -> None:
        self._shm = shm
        self._nslots = nslots
        self._owner = owner

    @classmethod
    def create(cls, nslots: int = DEFAULT_SLOTS) -> "SharedVerdictCache":
        """Allocate a fresh zeroed segment (supervisor side)."""
        if shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        if nslots < 1:
            raise ValueError(f"slot count must be positive, got {nslots}")
        size = _HEADER.size + nslots * _DIGEST_SIZE
        shm = shared_memory.SharedMemory(create=True, size=size)
        _HEADER.pack_into(shm.buf, 0, _MAGIC, nslots, 0, 0)
        return cls(shm, nslots, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedVerdictCache":
        """Map an existing segment by name (worker side)."""
        if shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        # CPython's resource tracker registers *attachments* too and would
        # unlink the segment when this worker exits, yanking it from under
        # the supervisor and its siblings; worse, forked workers share the
        # parent's tracker process, where an after-the-fact unregister
        # would also erase the creator's legitimate registration (names
        # are a set there) and turn the final unlink into tracker noise.
        # So suppress the registration during construction instead
        # (equivalent to 3.13's ``track=False``).  Ownership stays with
        # the creator.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        magic, nslots, _, _ = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise ValueError(f"segment {name!r} is not a verdict cache")
        return cls(shm, int(nslots), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nslots(self) -> int:
        return self._nslots

    def _slot_offset(self, payload: bytes) -> int:
        digest = blake2b(payload, digest_size=8).digest()
        slot = int.from_bytes(digest, "little") % self._nslots
        return _HEADER.size + slot * _DIGEST_SIZE

    @staticmethod
    def _fingerprints(payload: bytes) -> tuple[bytes, bytes]:
        true_digest = blake2b(payload + b"\x01", digest_size=_DIGEST_SIZE).digest()
        false_digest = blake2b(payload + b"\x00", digest_size=_DIGEST_SIZE).digest()
        return true_digest, false_digest

    def _bump(self, offset: int) -> None:
        value = struct.unpack_from("<Q", self._shm.buf, offset)[0]
        struct.pack_into("<Q", self._shm.buf, offset, (value + 1) & (2**64 - 1))

    def probe(self, payload: bytes) -> bool | None:
        """The published verdict for ``payload``, or ``None`` on a miss."""
        offset = self._slot_offset(payload)
        stored = bytes(self._shm.buf[offset : offset + _DIGEST_SIZE])
        true_digest, false_digest = self._fingerprints(payload)
        if stored == true_digest:
            verdict = True
        elif stored == false_digest:
            verdict = False
        else:
            return None
        self._bump(_HITS_OFFSET)
        return verdict

    def publish(self, payload: bytes, verdict: bool) -> None:
        """Store ``verdict`` for ``payload`` (last writer wins)."""
        true_digest, false_digest = self._fingerprints(payload)
        offset = self._slot_offset(payload)
        self._shm.buf[offset : offset + _DIGEST_SIZE] = (
            true_digest if verdict else false_digest
        )
        self._bump(_STORES_OFFSET)

    def stats(self) -> dict[str, int]:
        """Shared (cross-process, racy-but-monotone) counters."""
        _, _, hits, stores = _HEADER.unpack_from(self._shm.buf, 0)
        return {"slots": self._nslots, "hits": int(hits), "stores": int(stores)}

    def close(self) -> None:
        """Unmap this process's view (the segment itself survives)."""
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - double close after fork
            pass

    def destroy(self) -> None:
        """Unmap and unlink the segment (creator side, end of campaign)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass


# -- lazy per-process attachment (what the backends talk to) -------------------

#: ``False`` = not yet resolved; ``None`` = resolved to "no cache";
#: otherwise the live attachment.
_attached: "SharedVerdictCache | None | bool" = False


def _reset_attachment() -> None:
    """Drop the (possibly fork-inherited) attachment; re-resolve lazily."""
    global _attached
    if isinstance(_attached, SharedVerdictCache):
        _attached.close()
    _attached = False


register_fork_reset(_reset_attachment)


def active_cache() -> SharedVerdictCache | None:
    """The process's attachment to the campaign cache, if one is announced."""
    global _attached
    if _attached is False:
        name = os.environ.get(ENV_VAR, "")
        if not name:
            _attached = None
        else:
            try:
                _attached = SharedVerdictCache.attach(name)
            except Exception:
                _attached = None  # fail-open: run uncached
    return _attached if isinstance(_attached, SharedVerdictCache) else None


def probe(payload: bytes) -> bool | None:
    """Probe the campaign cache; ``None`` when absent, missing or failing."""
    cache = active_cache()
    if cache is None:
        return None
    try:
        return cache.probe(payload)
    except Exception:  # pragma: no cover - segment vanished mid-run
        return None


def publish(payload: bytes, verdict: bool) -> None:
    """Publish a verdict to the campaign cache; silently a no-op without one."""
    cache = active_cache()
    if cache is None:
        return
    try:
        cache.publish(payload, verdict)
    except Exception:  # pragma: no cover - segment vanished mid-run
        pass


def stats() -> dict[str, int] | None:
    """Shared counters of the attached cache, or ``None`` without one."""
    cache = active_cache()
    if cache is None:
        return None
    try:
        return cache.stats()
    except Exception:  # pragma: no cover
        return None
