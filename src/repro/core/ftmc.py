"""FT-S: the fault-tolerant mixed-criticality scheduling algorithm.

Implements Algorithm 1 of the paper, generic over the scheduler backend
``S`` (Theorem 4.1), plus the two concrete instances of Appendix B:

- :func:`ft_edf_vd` — Algorithm 2 (EDF-VD with task killing);
- :func:`ft_edf_vd_degradation` — the service-degradation variant
  (Algorithm 2 with line 11 replaced by eq. 11).

The driver proceeds exactly as the pseudo code:

1. line 2 — minimal uniform re-execution profiles ``n_HI``/``n_LO``
   meeting each level's PFH ceiling (eq. 2);
2. line 4 — minimal adaptation profile ``n1_HI`` keeping the LO level
   safe under the backend's mechanism (eq. 5 or eq. 7); FAILURE if none
   exists up to ``n_HI``;
3. line 8 — maximal adaptation profile ``n2_HI`` the backend can
   schedule (on the converted set of Lemma 4.1); and
4. lines 9-15 — SUCCESS with ``n'_HI = n2_HI`` iff ``n1_HI <= n2_HI``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.backends import (
    EDFVDBackend,
    EDFVDDegradationBackend,
    SchedulerBackend,
)
from repro.core.conversion import convert_uniform
from repro.core.profiles import (
    maximal_adaptation_profile,
    minimal_adaptation_profile,
    minimal_reexecution_profiles,
    pfh_lo_adapted,
)
from repro.model.criticality import CriticalityRole
from repro.model.faults import ReexecutionProfile
from repro.model.mc_task import MCTaskSet
from repro.model.task import TaskSet
from repro.safety.pfh import DEFAULT_MAX_REEXECUTIONS, pfh_plain

__all__ = [
    "FTSFailure",
    "FTSResult",
    "ft_schedule",
    "ft_edf_vd",
    "ft_edf_vd_degradation",
    "DEFAULT_OPERATION_HOURS",
]

#: Default system operation duration ``OS`` in hours.  The paper's FMS
#: experiments use 10 h (the upper end of the 1-10 h commercial-aircraft
#: range it cites).
DEFAULT_OPERATION_HOURS: float = 10.0


class FTSFailure(enum.Enum):
    """Why FT-S signalled FAILURE."""

    #: Line 2 found no re-execution profile meeting a level's PFH ceiling.
    UNSAFE_REEXECUTION = "no re-execution profile meets the PFH requirement"
    #: Line 5: ``n1_HI > n_HI`` — LO safety cannot survive any adaptation.
    UNSAFE_ADAPTATION = "no adaptation profile keeps the LO level safe"
    #: Line 8 found no schedulable adaptation profile at all.
    UNSCHEDULABLE = "no adaptation profile is schedulable"
    #: Line 13: ``n1_HI > n2_HI`` — safety and schedulability conflict.
    INFEASIBLE_WINDOW = "minimal safe profile exceeds maximal schedulable profile"


@dataclass(frozen=True)
class FTSResult:
    """Outcome of one FT-S run.

    ``success`` mirrors the SUCCESS/FAILURE signal of Algorithm 1; the
    remaining fields expose every intermediate quantity for reporting.
    """

    success: bool
    failure: FTSFailure | None
    backend_name: str
    mechanism: str
    operation_hours: float
    #: ``df`` for degradation backends; ``None`` for killing backends.
    degradation_factor: float | None = None
    #: Line 2 outputs (``None`` when line 2 itself failed).
    n_hi: int | None = None
    n_lo: int | None = None
    #: Line 4 output (minimal safe adaptation profile).
    n1_hi: int | None = None
    #: Line 8 output (maximal schedulable adaptation profile).
    n2_hi: int | None = None
    #: The adopted adaptation profile (line 10): equals ``n2_hi`` on success.
    adaptation: int | None = None
    #: Converted MC task set ``Gamma(n_HI, n_LO, n'_HI)`` on success.
    mc_taskset: MCTaskSet | None = None
    #: PFH bounds at the adopted profiles (``nan`` when not applicable).
    pfh_hi: float = math.nan
    pfh_lo: float = math.nan
    #: Backend's ``U_MC`` on the adopted converted set (``nan`` if undefined).
    u_mc: float = math.nan

    def __bool__(self) -> bool:
        return self.success


def ft_schedule(
    taskset: TaskSet,
    backend: SchedulerBackend,
    operation_hours: float = DEFAULT_OPERATION_HOURS,
    max_n: int = DEFAULT_MAX_REEXECUTIONS,
    assume_full_wcet: bool = True,
    validate: bool = False,
) -> FTSResult:
    """Run FT-S (Algorithm 1) with the given scheduler backend.

    Parameters
    ----------
    taskset:
        Dual-criticality task set with a
        :class:`~repro.model.criticality.DualCriticalitySpec` attached and
        per-task failure probabilities set.
    backend:
        The conventional MC scheduling technique ``S``.
    operation_hours:
        ``OS``: mission duration in hours, used by the LO-safety bounds
        under adaptation (eqs. 5 and 7).
    max_n:
        Search ceiling for the re-execution profiles of line 2.
    assume_full_wcet:
        Footnote 1 of the paper (see :func:`repro.safety.pfh.max_rounds`).
    validate:
        Run the model lint rules (:func:`repro.lint.validate_taskset`)
        before searching profiles, raising
        :class:`repro.lint.LintError` on error-severity findings instead
        of computing an answer from a precondition-violating input.

    Returns
    -------
    FTSResult
        ``success=True`` guarantees (Theorem 4.1) that both safety and
        schedulability hold with the reported profiles.
    """
    if validate:
        from repro.lint.engine import validate_taskset

        validate_taskset(taskset)

    def fail(reason: FTSFailure, **fields) -> FTSResult:
        return FTSResult(
            success=False,
            failure=reason,
            backend_name=backend.name,
            mechanism=backend.mechanism,
            operation_hours=operation_hours,
            degradation_factor=backend.degradation_factor,
            **fields,
        )

    # Lines 1-3: minimal re-execution profiles per criticality level.
    profiles = minimal_reexecution_profiles(
        taskset, max_n=max_n, assume_full_wcet=assume_full_wcet
    )
    if profiles is None:
        return fail(FTSFailure.UNSAFE_REEXECUTION)
    n_hi, n_lo = profiles.n_hi, profiles.n_lo

    # Line 4: minimal adaptation profile keeping the LO level safe.
    n1 = minimal_adaptation_profile(
        taskset, n_hi, n_lo, backend.mechanism, operation_hours, assume_full_wcet
    )
    if n1 is None:
        # Line 5/6: n1_HI > n_HI.
        return fail(FTSFailure.UNSAFE_ADAPTATION, n_hi=n_hi, n_lo=n_lo)

    # Line 8: maximal schedulable adaptation profile.
    n2 = maximal_adaptation_profile(taskset, n_hi, n_lo, backend)
    if n2 is None:
        return fail(FTSFailure.UNSCHEDULABLE, n_hi=n_hi, n_lo=n_lo, n1_hi=n1)

    # Lines 9-15.
    if n1 > n2:
        return fail(
            FTSFailure.INFEASIBLE_WINDOW, n_hi=n_hi, n_lo=n_lo, n1_hi=n1, n2_hi=n2
        )

    adaptation = n2
    mc = convert_uniform(taskset, n_hi, n_lo, adaptation)
    reexecution = ReexecutionProfile.uniform(taskset, n_hi, n_lo)
    pfh_hi = pfh_plain(taskset, CriticalityRole.HI, reexecution, assume_full_wcet)
    pfh_lo = pfh_lo_adapted(
        taskset, n_hi, n_lo, adaptation, backend.mechanism, operation_hours,
        assume_full_wcet,
    )
    return FTSResult(
        success=True,
        failure=None,
        backend_name=backend.name,
        mechanism=backend.mechanism,
        operation_hours=operation_hours,
        degradation_factor=backend.degradation_factor,
        n_hi=n_hi,
        n_lo=n_lo,
        n1_hi=n1,
        n2_hi=n2,
        adaptation=adaptation,
        mc_taskset=mc,
        pfh_hi=pfh_hi,
        pfh_lo=pfh_lo,
        u_mc=backend.utilization_metric(mc),
    )


def ft_edf_vd(
    taskset: TaskSet,
    operation_hours: float = DEFAULT_OPERATION_HOURS,
    max_n: int = DEFAULT_MAX_REEXECUTIONS,
    assume_full_wcet: bool = True,
    validate: bool = False,
) -> FTSResult:
    """Fault-Tolerant EDF-VD (Algorithm 2): FT-S with task killing."""
    return ft_schedule(
        taskset,
        EDFVDBackend(),
        operation_hours=operation_hours,
        max_n=max_n,
        assume_full_wcet=assume_full_wcet,
        validate=validate,
    )


def ft_edf_vd_degradation(
    taskset: TaskSet,
    degradation_factor: float,
    operation_hours: float = DEFAULT_OPERATION_HOURS,
    max_n: int = DEFAULT_MAX_REEXECUTIONS,
    assume_full_wcet: bool = True,
    validate: bool = False,
) -> FTSResult:
    """FT-S with EDF-VD + service degradation (Appendix B.0.2)."""
    return ft_schedule(
        taskset,
        EDFVDDegradationBackend(degradation_factor),
        operation_hours=operation_hours,
        max_n=max_n,
        assume_full_wcet=assume_full_wcet,
        validate=validate,
    )
