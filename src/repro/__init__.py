"""ftmc — fault-tolerant mixed-criticality scheduling.

A full reproduction of P. Huang, H. Yang, L. Thiele, *"On the Scheduling
of Fault-Tolerant Mixed-Criticality Systems"* (TIK Report 351 / DAC 2014):
the safety (PFH) quantification of Lemmas 3.1-3.4, the problem conversion
of Lemma 4.1, the FT-S scheduling algorithm (Algorithms 1-2) with
pluggable mixed-criticality backends, a discrete-event fault-injection
simulator, and the paper's complete experimental evaluation (Tables 1-4,
Figures 1-3).

Quickstart::

    from repro import (
        CriticalityRole, DualCriticalitySpec, Task, TaskSet, ft_edf_vd,
    )

    tasks = [
        Task("ctrl", period=60, deadline=60, wcet=5,
             criticality=CriticalityRole.HI, failure_probability=1e-5),
        Task("log", period=40, deadline=40, wcet=7,
             criticality=CriticalityRole.LO, failure_probability=1e-5),
    ]
    system = TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))
    result = ft_edf_vd(system)
    assert result.success
"""

from repro.core import (
    AMCBackend,
    EDFVDBackend,
    EDFVDDegradationBackend,
    FTSFailure,
    FTSResult,
    SchedulerBackend,
    convert,
    convert_uniform,
    ft_edf_vd,
    ft_edf_vd_degradation,
    ft_schedule,
)
from repro.model import (
    HOUR_MS,
    AdaptationProfile,
    CriticalityRole,
    DO178BLevel,
    DualCriticalitySpec,
    FaultToleranceConfig,
    MCTask,
    MCTaskSet,
    ReexecutionProfile,
    Task,
    TaskSet,
)
from repro.io import load_taskset, save_taskset
from repro.lint import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
    lint_file,
    lint_mc_taskset,
    lint_taskset,
    validate_taskset,
)
from repro.report import AnalysisReport, analyse_system, render_report
from repro.safety import (
    pfh_lo_degradation,
    pfh_lo_killing,
    pfh_plain,
    survival_probability,
)

__version__ = "1.0.0"

__all__ = [
    "AMCBackend",
    "EDFVDBackend",
    "EDFVDDegradationBackend",
    "FTSFailure",
    "FTSResult",
    "SchedulerBackend",
    "convert",
    "convert_uniform",
    "ft_edf_vd",
    "ft_edf_vd_degradation",
    "ft_schedule",
    "HOUR_MS",
    "AdaptationProfile",
    "CriticalityRole",
    "DO178BLevel",
    "DualCriticalitySpec",
    "FaultToleranceConfig",
    "MCTask",
    "MCTaskSet",
    "ReexecutionProfile",
    "Task",
    "TaskSet",
    "pfh_lo_degradation",
    "pfh_lo_killing",
    "pfh_plain",
    "survival_probability",
    "load_taskset",
    "save_taskset",
    "Diagnostic",
    "LintError",
    "LintReport",
    "Severity",
    "lint_file",
    "lint_mc_taskset",
    "lint_taskset",
    "validate_taskset",
    "AnalysisReport",
    "analyse_system",
    "render_report",
    "__version__",
]
